package timecache

import (
	"timecache/internal/attack"
	"timecache/internal/machine"
	"timecache/internal/replacement"
)

// MicrobenchmarkResult reports the paper's §VI-A1 microbenchmark: an
// attacker flushes a 256-line shared array, sleeps while the victim writes
// it, then performs timed reads. Any hit is a successful observation.
type MicrobenchmarkResult struct {
	Lines       int
	Hits        int
	MeanLatency float64
}

// RunMicrobenchmark executes the §VI-A1 microbenchmark attack under the
// given defense mode.
func RunMicrobenchmark(mode Mode) (MicrobenchmarkResult, error) {
	r, err := attack.RunMicrobenchmark(mode.secMode())
	if err != nil {
		return MicrobenchmarkResult{}, err
	}
	return MicrobenchmarkResult{Lines: r.Lines, Hits: r.Hits, MeanLatency: r.MeanLatency}, nil
}

// RSAAttackResult reports the §VI-A2 flush+reload (or evict+reload) attack
// against the GnuPG-style square-and-multiply victim.
type RSAAttackResult struct {
	// KeyBits is the true key as a bit string; RecoveredBits is what the
	// attacker inferred.
	KeyBits, RecoveredBits string
	// Accuracy is the fraction of bits recovered correctly (1.0 = full key
	// extraction; ~0.5 = no information).
	Accuracy float64
	// Hits is the attacker's total probe hits (zero under TimeCache).
	Hits int
	// VictimCorrect confirms the exponentiation still computed the right
	// result (the defense must not perturb correctness).
	VictimCorrect bool
}

func toRSAResult(r attack.RSAResult) RSAAttackResult {
	return RSAAttackResult{
		KeyBits:       r.Key.String(),
		RecoveredBits: r.Recovered.String(),
		Accuracy:      r.Accuracy,
		Hits:          r.Hits,
		VictimCorrect: r.VictimCorrect,
	}
}

// RunRSAAttack mounts the flush+reload RSA key extraction of §VI-A2.
func RunRSAAttack(mode Mode, keyBits int, seed uint64) (RSAAttackResult, error) {
	r, err := attack.RunRSA(mode.secMode(), keyBits, seed)
	if err != nil {
		return RSAAttackResult{}, err
	}
	return toRSAResult(r), nil
}

// RunEvictReloadAttack mounts the evict+reload variant, which displaces the
// monitored lines with attacker-constructed eviction sets instead of
// clflush.
func RunEvictReloadAttack(mode Mode, keyBits int, seed uint64) (RSAAttackResult, error) {
	r, err := attack.RunEvictReload(mode.secMode(), keyBits, seed)
	if err != nil {
		return RSAAttackResult{}, err
	}
	return toRSAResult(r), nil
}

// SecretAttackResult reports how well a generic attack recovered a victim's
// secret bit sequence. Accuracy near 1.0 means the channel leaks; near 0.5
// means it carries no information.
type SecretAttackResult struct {
	SecretBits, RecoveredBits string
	Accuracy                  float64
}

func toSecretResult(r attack.SecretResult) SecretAttackResult {
	bits := func(bs []bool) string {
		out := make([]byte, len(bs))
		for i, b := range bs {
			if b {
				out[i] = '1'
			} else {
				out[i] = '0'
			}
		}
		return string(out)
	}
	return SecretAttackResult{SecretBits: bits(r.Secret), RecoveredBits: bits(r.Recovered), Accuracy: r.Accuracy}
}

// RunFlushFlushAttack mounts the flush+flush attack (§VII-C). TimeCache
// alone does not stop it; constantTimeFlush (a fixed-latency clflush with
// dummy writeback) does.
func RunFlushFlushAttack(mode Mode, constantTimeFlush bool, bits int, seed uint64) (SecretAttackResult, error) {
	r, err := attack.RunFlushFlush(mode.secMode(), constantTimeFlush, bits, seed)
	if err != nil {
		return SecretAttackResult{}, err
	}
	return toSecretResult(r), nil
}

// RunPrimeProbeAttack mounts the prime+probe contention attack, which needs
// no shared memory and is outside TimeCache's threat model; randomizeIndex
// (CEASER-lite) defeats it.
func RunPrimeProbeAttack(mode Mode, randomizeIndex bool, bits int, seed uint64) (SecretAttackResult, error) {
	r, err := attack.RunPrimeProbe(mode.secMode(), randomizeIndex, bits, seed)
	if err != nil {
		return SecretAttackResult{}, err
	}
	return toSecretResult(r), nil
}

// RunLRUAttack mounts the cache-LRU-state attack (§VII-A) under the given
// replacement policy ("lru", "tree-plru", or "random"); random replacement
// destroys the channel.
func RunLRUAttack(mode Mode, policy string, bits int, seed uint64) (SecretAttackResult, error) {
	r, err := attack.RunLRU(mode.secMode(), replacement.Kind(policy), bits, seed)
	if err != nil {
		return SecretAttackResult{}, err
	}
	return toSecretResult(r), nil
}

// RunSMTAttack mounts flush+reload from a hyperthread: attacker and victim
// run simultaneously on the two hardware threads of one core, sharing the
// L1 caches (paper §III covers this placement; per-hardware-context s-bits
// defend it with no context switches involved).
func RunSMTAttack(mode Mode, bits int, seed uint64) (SecretAttackResult, error) {
	r, err := attack.RunSMT(mode.secMode(), bits, seed)
	if err != nil {
		return SecretAttackResult{}, err
	}
	return toSecretResult(r), nil
}

// RunCoherenceAttack mounts the invalidate+transfer attack (§VII-B) across
// two cores; TimeCache removes the remote-forward timing difference.
func RunCoherenceAttack(mode Mode, bits int, seed uint64) (SecretAttackResult, error) {
	r, err := attack.RunCoherence(mode.secMode(), bits, seed)
	if err != nil {
		return SecretAttackResult{}, err
	}
	return toSecretResult(r), nil
}

// RunLLCOccupancyAttack mounts the LLC occupancy (contention) channel: the
// victim modulates its working-set size with the secret and the attacker
// times whole sweeps of a private buffer — no shared memory, no flushes, no
// eviction sets. Address-based defenses (s-bits, presence bits) leave it
// intact; way partitioning or TTL-based eviction break it.
func RunLLCOccupancyAttack(mode Mode, bits int, seed uint64) (SecretAttackResult, error) {
	r, err := attack.RunLLCOccupancy(machine.Config{Mode: mode.secMode()}, bits, seed)
	if err != nil {
		return SecretAttackResult{}, err
	}
	return toSecretResult(r), nil
}

// SpectreResult reports the Spectre-style covert-channel experiment: the
// victim performs transient secret-indexed loads into a shared probe
// array; the attacker reconstructs the secret bytes by flush+reload.
type SpectreResult struct {
	Secret, Recovered []byte
	BytesCorrect      int
	Hits              int
}

// RunSpectreChannel demonstrates the paper's §VIII/§IX claim that breaking
// the reuse channel also breaks Spectre's transmission: the attacker
// recovers the secret on the baseline and learns nothing under TimeCache.
func RunSpectreChannel(mode Mode, secret []byte) (SpectreResult, error) {
	r, err := attack.RunSpectre(mode.secMode(), secret)
	if err != nil {
		return SpectreResult{}, err
	}
	return SpectreResult{Secret: r.Secret, Recovered: r.Recovered, BytesCorrect: r.BytesCorrect, Hits: r.Hits}, nil
}

// EvictTimeResult reports the §VII-D evict+time experiment: the victim's
// execution time with and without the attacker flushing its shared line.
type EvictTimeResult struct {
	VictimCyclesFlushed     uint64
	VictimCyclesUndisturbed uint64
	// Leaks reports whether the difference is observable (it remains so
	// even under TimeCache; the paper notes the channel is noisy and out
	// of scope).
	Leaks bool
}

// RunEvictTimeAttack measures the evict+time channel of §VII-D.
func RunEvictTimeAttack(mode Mode, iters int) (EvictTimeResult, error) {
	r, err := attack.RunEvictTime(mode.secMode(), iters)
	if err != nil {
		return EvictTimeResult{}, err
	}
	return EvictTimeResult{
		VictimCyclesFlushed:     r.VictimCyclesFlushed,
		VictimCyclesUndisturbed: r.VictimCyclesUndisturbed,
		Leaks:                   r.Leaks(),
	}, nil
}
