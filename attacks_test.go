package timecache

import "testing"

// TestAttackWrapperSweep exercises every public attack entry point at small
// sizes; the detailed behavioral assertions live in internal/attack — here
// we check the wrappers plumb configurations and results faithfully.
func TestAttackWrapperSweep(t *testing.T) {
	const bits, seed = 16, 3

	if r, err := RunEvictReloadAttack(TimeCache, bits, seed); err != nil || r.Hits != 0 {
		t.Fatalf("evict+reload: %+v err=%v", r, err)
	}
	if r, err := RunFlushFlushAttack(TimeCache, true, bits, seed); err != nil || r.Accuracy > 0.95 {
		t.Fatalf("flush+flush(ct): %+v err=%v", r, err)
	}
	if r, err := RunPrimeProbeAttack(Baseline, false, bits, seed); err != nil || r.Accuracy < 0.8 {
		t.Fatalf("prime+probe: %+v err=%v", r, err)
	}
	if r, err := RunLRUAttack(Baseline, "lru", bits, seed); err != nil || r.Accuracy < 0.8 {
		t.Fatalf("lru: %+v err=%v", r, err)
	}
	if _, err := RunLRUAttack(Baseline, "bogus-policy", bits, seed); err == nil {
		t.Fatal("unknown replacement policy must error")
	}
	if r, err := RunCoherenceAttack(TimeCache, bits, seed); err != nil || r.Accuracy > 0.8 {
		t.Fatalf("coherence: %+v err=%v", r, err)
	}
	if r, err := RunSMTAttack(TimeCache, bits, seed); err != nil || r.Accuracy > 0.8 {
		t.Fatalf("smt: %+v err=%v", r, err)
	}
	if r, err := RunEvictTimeAttack(Baseline, 500); err != nil || !r.Leaks {
		t.Fatalf("evict+time: %+v err=%v", r, err)
	}
	if r, err := RunSpectreChannel(TimeCache, []byte("ab")); err != nil || r.Hits != 0 {
		t.Fatalf("spectre: %+v err=%v", r, err)
	}
	if _, err := RunSpectreChannel(TimeCache, nil); err == nil {
		t.Fatal("empty spectre secret must error")
	}
	// Bit-string fields must be populated and consistent.
	r, err := RunSMTAttack(Baseline, bits, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SecretBits) != bits || len(r.RecoveredBits) != bits {
		t.Fatalf("bit strings malformed: %q %q", r.SecretBits, r.RecoveredBits)
	}
}

// TestLimitedPointerConfig exercises the MaxSharers public plumbing.
func TestLimitedPointerConfig(t *testing.T) {
	sys, err := New(Config{Mode: TimeCache, MaxSharers: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := `
		movi r1, 0
		movi r2, 20000
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`
	for i := 0; i < 2; i++ {
		if _, err := sys.LoadAsm(src, LoadOptions{ShareKey: "lim"}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run(1 << 62)
	if !sys.AllExited() {
		t.Fatal("did not finish")
	}
	var fa uint64
	for _, c := range sys.Stats().Caches {
		fa += c.FirstAccess
	}
	if fa == 0 {
		t.Fatal("limited tracker must still produce first accesses")
	}
}

// TestBookkeepingScalingPublic covers the public wrapper.
func TestBookkeepingScalingPublic(t *testing.T) {
	rows, err := ReproduceBookkeepingScaling([]uint64{150_000, 600_000},
		ExperimentOptions{InstrsPerProc: 40_000, WarmupInstrs: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].BookkeepingPct >= rows[0].BookkeepingPct {
		t.Fatalf("bookkeeping rows: %+v", rows)
	}
}

// TestDefenseAblationPublic covers the public wrapper.
func TestDefenseAblationPublic(t *testing.T) {
	rows, err := ReproduceDefenseAblation("2Xnamd",
		ExperimentOptions{InstrsPerProc: 30_000, WarmupInstrs: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	// The ablation rows come from the defense registry in canonical order,
	// with the historical display names for the first five.
	want := []string{"baseline", "timecache", "ftm", "partitioned", "flush-on-switch", "clepsydra", "fase"}
	if len(rows) != len(want) {
		t.Fatalf("expected %d defenses, got %d", len(want), len(rows))
	}
	for i, r := range rows {
		if r.Defense != want[i] {
			t.Fatalf("row %d defense = %q, want %q", i, r.Defense, want[i])
		}
	}
	if _, err := ReproduceDefenseAblation("nope", ExperimentOptions{}); err == nil {
		t.Fatal("unknown workload must error")
	}
}
