// promcheck validates observability artifacts from stdin: by default a
// Prometheus text exposition (parsed with the strict internal/promtext lint,
// optionally asserting named series exist), with -trace a Chrome trace-event
// JSON file (as served by /v1/jobs/{id}/trace). The CI server-smoke job pipes
// live scrapes and traces through it.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promcheck -require jobs_accepted_total
//	curl -s localhost:8080/v1/jobs/1/trace | promcheck -trace -require-span run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"timecache/internal/promtext"
)

func main() {
	trace := flag.Bool("trace", false, "validate a Chrome trace-event JSON file instead of a metrics exposition")
	require := flag.String("require", "", "comma-separated metric families that must be present with samples")
	requireSpan := flag.String("require-span", "", "comma-separated span names that must appear as complete (ph=X) events (-trace only)")
	flag.Parse()

	var err error
	if *trace {
		err = checkTrace(splitList(*requireSpan))
	} else {
		err = checkMetrics(splitList(*require))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func checkMetrics(require []string) error {
	m, err := promtext.Parse(os.Stdin)
	if err != nil {
		return err
	}
	for _, name := range require {
		f := m.Family(name)
		if f == nil {
			return fmt.Errorf("required metric %s not exposed", name)
		}
		if len(f.Samples) == 0 {
			return fmt.Errorf("required metric %s has no samples", name)
		}
	}
	fmt.Printf("promcheck: ok (%d families, %d samples)\n", len(m.Families), len(m.Samples()))
	return nil
}

// traceEvent mirrors the subset of the Chrome trace-event schema that the
// validator checks; extra fields (cat, args, s) are tolerated, as viewers do.
type traceEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	PID   *int    `json:"pid"`
	TID   *int    `json:"tid"`
}

func checkTrace(requireSpans []string) error {
	var file struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(os.Stdin).Decode(&file); err != nil {
		return fmt.Errorf("trace JSON: %w", err)
	}
	if file.TraceEvents == nil {
		return fmt.Errorf("trace has no traceEvents array")
	}
	spans := map[string]bool{}
	for i, ev := range file.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("event %d has no name", i)
		}
		if ev.PID == nil || ev.TID == nil {
			return fmt.Errorf("event %d (%s) missing pid/tid", i, ev.Name)
		}
		switch ev.Phase {
		case "X":
			if ev.Dur < 0 || ev.TS < 0 {
				return fmt.Errorf("event %d (%s) has negative ts/dur", i, ev.Name)
			}
			spans[ev.Name] = true
		case "i", "M":
		default:
			return fmt.Errorf("event %d (%s) has unexpected phase %q", i, ev.Name, ev.Phase)
		}
	}
	for _, name := range requireSpans {
		if !spans[name] {
			return fmt.Errorf("required span %q not present", name)
		}
	}
	fmt.Printf("promcheck: trace ok (%d events, %d distinct spans)\n", len(file.TraceEvents), len(spans))
	return nil
}
