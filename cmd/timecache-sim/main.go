// Command timecache-sim runs a mix of workload models on a simulated
// machine and prints per-cache statistics, normalized against an optional
// baseline run.
//
// Usage:
//
//	timecache-sim -mode timecache -workloads lbm,wrf -instrs 300000
//	timecache-sim -mode baseline  -workloads 2Xperlbench
//	timecache-sim -compare -workloads 2Xlbm   # run baseline AND timecache
//	timecache-sim -llc-sweep 512K,1M,2M,4M -workloads 2Xlbm -j4
//
// Telemetry outputs (any may be combined; see internal/telemetry):
//
//	timecache-sim -mode timecache -metrics-out m.csv -sample-every 5000
//	timecache-sim -mode timecache -trace-json t.json    # load in Perfetto
//	timecache-sim -mode timecache -manifest run.json -hist
//
// In -compare mode the telemetry outputs come from the timecache leg.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"timecache"
	"timecache/internal/harness"
	"timecache/internal/machine"
	"timecache/internal/runner"
	"timecache/internal/stats"
	"timecache/internal/telemetry"
)

func main() {
	var (
		modeFlag  = flag.String("mode", "timecache", "defense mode: baseline | timecache | ftm")
		workloads = flag.String("workloads", "2Xlbm", "comma-separated SPEC profile names, or 2X<name> for a pair")
		instrs    = flag.Uint64("instrs", 300_000, "instructions per process")
		llc       = flag.Int("llc", 2<<20, "LLC size in bytes")
		llcSweep  = flag.String("llc-sweep", "", "comma-separated LLC sizes (e.g. 512K,1M,2M,4M): run baseline+timecache at each size and report normalized time")
		matrixRun = flag.Bool("matrix", false, "run the defense×attack evaluation matrix and print the leakage/overhead grid")
		defenses  = flag.String("defenses", "", "comma-separated defense kinds for -matrix (default: every registered defense)")
		attacks   = flag.String("attacks", "", "comma-separated attack names for -matrix (default: the full corpus)")
		attackBit = flag.Int("attack-bits", 0, "secret length each -matrix attack transmits (default 32)")
		cores     = flag.Int("cores", 1, "number of cores")
		compare   = flag.Bool("compare", false, "run baseline and timecache and report normalized time")
		gate      = flag.Bool("gatelevel", false, "use the gate-level bit-serial comparator")
		cohCheck  = flag.Bool("coherence-check", false, "cross-check the LLC sharer directory against brute-force L1 probes on every coherence event (debug; slow)")
		jobs      = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent runs in the -llc-sweep path (-j1 = sequential)")
		timeout   = flag.Duration("timeout", 0, "overall deadline (e.g. 30s); on expiry the run stops cleanly mid-simulation")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this path at exit")

		metricsOut  = flag.String("metrics-out", "", "write interval-metrics CSV to this path")
		histOut     = flag.String("hist-out", "", "write latency-histogram CSV to this path")
		traceJSON   = flag.String("trace-json", "", "write Chrome trace-event JSON (Perfetto-loadable) to this path")
		manifest    = flag.String("manifest", "", "write a JSON run manifest to this path")
		sampleEvery = flag.Uint64("sample-every", 0, "interval sampler period in instructions (default 10000)")
		traceAcc    = flag.Bool("trace-accesses", false, "add per-access instant events to the trace (verbose)")
		showHist    = flag.Bool("hist", false, "print latency histograms after the run")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	tcfg := telemetry.Config{
		SampleEvery:   *sampleEvery,
		TraceAccesses: *traceAcc,
		MetricsCSV:    *metricsOut,
		HistogramCSV:  *histOut,
		TraceJSON:     *traceJSON,
		ManifestJSON:  *manifest,
	}
	telemetryOn := tcfg != (telemetry.Config{}) || *showHist

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *matrixRun {
		if err := runMatrix(ctx, *defenses, *attacks, *workloads, *attackBit, *instrs, *cohCheck, *jobs); err != nil {
			fatalCtx(err, *timeout)
		}
		return
	}
	if *llcSweep != "" {
		if err := runLLCSweep(ctx, *llcSweep, *workloads, *instrs, *cores, *gate, *cohCheck, *jobs); err != nil {
			fatalCtx(err, *timeout)
		}
		return
	}
	if *compare {
		if err := runCompare(ctx, *workloads, *instrs, *llc, *cores, *gate, *cohCheck, tcfg, telemetryOn, *showHist); err != nil {
			fatalCtx(err, *timeout)
		}
		return
	}
	mode, err := parseMode(*modeFlag)
	if err != nil {
		fatal(err)
	}
	cycles, st, col, err := runOnce(ctx, nil, mode, *workloads, *instrs, *llc, *cores, *gate, *cohCheck, tcfg, telemetryOn)
	if err != nil {
		fatalCtx(err, *timeout)
	}
	printStats(mode, cycles, st)
	reportTelemetry(col, *showHist)
}

func parseMode(s string) (timecache.Mode, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return timecache.Baseline, nil
	case "timecache":
		return timecache.TimeCache, nil
	case "ftm":
		return timecache.FTM, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

// expand turns "2Xlbm" into ["lbm","lbm"] and passes other names through.
func expand(list string) []string {
	var out []string
	for _, w := range strings.Split(list, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if strings.HasPrefix(w, "2X") {
			name := strings.TrimPrefix(w, "2X")
			out = append(out, name, name)
		} else {
			out = append(out, w)
		}
	}
	return out
}

func runOnce(ctx context.Context, pool *machine.Pool, mode timecache.Mode, workloads string, instrs uint64, llc, cores int, gate, cohCheck bool, tcfg telemetry.Config, withTelemetry bool) (uint64, timecache.Stats, *telemetry.Collector, error) {
	sys, err := timecache.NewFromPool(pool, timecache.Config{
		Mode: mode, LLCSize: llc, Cores: cores, GateLevel: gate,
		CoherenceCheck: cohCheck,
	})
	if err != nil {
		return 0, timecache.Stats{}, nil, err
	}
	var col *telemetry.Collector
	if withTelemetry {
		col = sys.AttachTelemetry(tcfg)
		col.SetMeta("workloads", workloads)
		col.SetMeta("instrs_per_proc", instrs)
		col.SetMeta("mode", mode.String())
	}
	names := expand(workloads)
	if len(names) == 0 {
		return 0, timecache.Stats{}, nil, fmt.Errorf("no workloads given")
	}
	for i, name := range names {
		if _, err := sys.SpawnSpec(name, i%cores, instrs, uint64(1001+i*1001)); err != nil {
			return 0, timecache.Stats{}, nil, err
		}
	}
	cycles := sys.RunContext(ctx, 1<<62)
	if err := ctx.Err(); err != nil {
		return 0, timecache.Stats{}, nil, fmt.Errorf("stopped after %d cycles: %w", cycles, err)
	}
	if !sys.AllExited() {
		return 0, timecache.Stats{}, nil, fmt.Errorf("workloads did not finish")
	}
	if col != nil {
		if err := col.Finish(); err != nil {
			return 0, timecache.Stats{}, nil, err
		}
	}
	st := sys.Stats()
	sys.Release()
	return cycles, st, col, nil
}

// parseSize parses a byte size with an optional K/KB/M/MB/G/GB suffix.
func parseSize(s string) (int, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	for _, suf := range []struct {
		text string
		mult int
	}{{"KB", 1 << 10}, {"K", 1 << 10}, {"MB", 1 << 20}, {"M", 1 << 20}, {"GB", 1 << 30}, {"G", 1 << 30}} {
		if strings.HasSuffix(t, suf.text) {
			t = strings.TrimSuffix(t, suf.text)
			mult = suf.mult
			break
		}
	}
	n, err := strconv.Atoi(t)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// runLLCSweep runs baseline and timecache legs of the given workload mix at
// each LLC size, fanning the independent runs out across -j workers. Each
// worker keeps a machine.Pool so legs with the same shape reuse one Reset
// machine; a reset machine is indistinguishable from a fresh one, so the
// table is byte-identical at any -j.
func runLLCSweep(ctx context.Context, sweep, workloads string, instrs uint64, cores int, gate, cohCheck bool, jobs int) error {
	var sizes []int
	for _, f := range strings.Split(sweep, ",") {
		if strings.TrimSpace(f) == "" {
			continue
		}
		n, err := parseSize(f)
		if err != nil {
			return err
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return fmt.Errorf("llc-sweep: no sizes given")
	}
	// One job per (size, mode) leg; leg order is fixed so results regroup
	// deterministically.
	modes := []timecache.Mode{timecache.Baseline, timecache.TimeCache}
	cycles, err := runner.MapWorkersCtx(ctx, len(sizes)*len(modes), runner.Options{Workers: jobs}, machine.NewPool, func(pool *machine.Pool, i int) (uint64, error) {
		size, mode := sizes[i/len(modes)], modes[i%len(modes)]
		c, _, _, err := runOnce(ctx, pool, mode, workloads, instrs, size, cores, gate, cohCheck, telemetry.Config{}, false)
		return c, err
	})
	if err != nil {
		return err
	}
	tb := stats.NewTable("llc", "baseline-cycles", "timecache-cycles", "normalized", "overhead-pct")
	for si, size := range sizes {
		b, t := cycles[si*len(modes)], cycles[si*len(modes)+1]
		norm := float64(t) / float64(b)
		tb.Add(sizeLabel(size), b, t, norm, (norm-1)*100)
	}
	fmt.Printf("LLC sweep (%s, %d instrs/proc, cold start included):\n", workloads, instrs)
	fmt.Print(tb.String())
	return nil
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// runMatrix dispatches the defense×attack matrix job — the same job kind
// cmd/reproduce's -only matrix and the job service's POST /v1/jobs run —
// and prints the leakage/overhead grid.
func runMatrix(ctx context.Context, defenses, attacks, pairs string, attackBits int, instrs uint64, cohCheck bool, jobs int) error {
	j := harness.Job{
		Experiment: harness.ExpMatrix,
		Pairs:      splitList(pairs),
		Defenses:   splitList(defenses),
		Attacks:    splitList(attacks),
		AttackBits: attackBits,
	}
	tab, err := harness.RunJob(j, harness.Options{
		InstrsPerProc:  instrs,
		CoherenceCheck: cohCheck,
		Jobs:           jobs,
		Ctx:            ctx,
	})
	if err != nil {
		return err
	}
	fmt.Println("Defense × attack matrix (leaked bits per attack; slowdown vs none):")
	fmt.Print(tab.String())
	return nil
}

func runCompare(ctx context.Context, workloads string, instrs uint64, llc, cores int, gate, cohCheck bool, tcfg telemetry.Config, withTelemetry, showHist bool) error {
	bCycles, _, _, err := runOnce(ctx, nil, timecache.Baseline, workloads, instrs, llc, cores, gate, cohCheck, telemetry.Config{}, false)
	if err != nil {
		return err
	}
	tCycles, st, col, err := runOnce(ctx, nil, timecache.TimeCache, workloads, instrs, llc, cores, gate, cohCheck, tcfg, withTelemetry)
	if err != nil {
		return err
	}
	printStats(timecache.TimeCache, tCycles, st)
	reportTelemetry(col, showHist)
	norm := float64(tCycles) / float64(bCycles)
	fmt.Printf("\nbaseline cycles : %d\n", bCycles)
	fmt.Printf("timecache cycles: %d\n", tCycles)
	fmt.Printf("normalized time : %.4f (%.2f%% overhead, cold start included)\n",
		norm, (norm-1)*100)
	return nil
}

// reportTelemetry prints the interval-series sparklines, a one-line summary
// of what was written, and (with -hist) the latency histograms.
func reportTelemetry(col *telemetry.Collector, showHist bool) {
	if col == nil {
		return
	}
	fmt.Println()
	fmt.Print(col.Sampler().Render())
	if showHist {
		fmt.Println()
		fmt.Print(col.Histograms().Render())
	}
	fmt.Printf("\ntelemetry: %d samples, %d accesses observed, %d trace events\n",
		len(col.Sampler().Samples()), col.Histograms().Total(), col.Trace().Len())
}

func printStats(mode timecache.Mode, cycles uint64, st timecache.Stats) {
	fmt.Printf("mode=%s cycles=%d switches=%d syscalls=%d bookkeeping=%d cycles\n\n",
		mode, cycles, st.ContextSwitches, st.Syscalls, st.BookkeepingCycles)
	tb := stats.NewTable("cache", "accesses", "hits", "misses", "first-access", "evictions")
	for _, c := range st.Caches {
		tb.Add(c.Name, c.Accesses, c.Hits, c.Misses, c.FirstAccess, c.Evictions)
	}
	fmt.Print(tb.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "timecache-sim:", err)
	os.Exit(1)
}

// fatalCtx distinguishes a -timeout expiry (expected, reported as a clean
// partial-results stop) from a real failure.
func fatalCtx(err error, timeout time.Duration) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "timecache-sim: -timeout %s expired: %v; partial results discarded\n", timeout, err)
		os.Exit(1)
	}
	fatal(err)
}
