// Command timecache-serve is the simulation job service daemon: it exposes
// the experiment, attack, and sweep harness over a JSON/HTTP API so many
// clients can share one warm simulator fleet instead of forking CLIs.
//
// Usage:
//
//	timecache-serve -addr :8080 -workers 4 -queue 64 -log-format json
//
// Endpoints (see internal/server and EXPERIMENTS.md for the job-spec
// schema):
//
//	POST   /v1/jobs             submit a job (202; 429+Retry-After when full)
//	GET    /v1/jobs             list jobs (?limit=&after= paginate)
//	POST   /v1/store/compact    compact the durable job log (404 if -store-dir unset)
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel (stops a running simulation mid-slice)
//	GET    /v1/jobs/{id}/events progress stream (SSE)
//	GET    /v1/jobs/{id}/result result as ?format=csv|md|json
//	GET    /v1/jobs/{id}/trace  per-job Chrome trace (lifecycle + leg spans)
//	GET    /v1/experiments      available experiment names
//	GET    /v1/cache/stats      result-cache accounting snapshot
//	DELETE /v1/cache            drop every cached result
//	GET    /healthz /readyz /metrics
//
// The daemon fronts the workers with a content-addressed result cache
// (bounded by -cache-entries and -cache-bytes; -cache-entries 0 disables
// it): a submission whose canonical spec matches a cached result is answered
// without simulating, concurrent identical submissions collapse onto one
// run, and every POST /v1/jobs response reports its disposition in the
// X-Timecache-Cache header (hit, miss, coalesced, or bypass — jobs can opt
// out per-submission with "no_cache": true).
//
// With -store-dir the daemon journals every job to a write-ahead log and
// replays it on restart: finished jobs come back byte-identical (results,
// SSE history, cache seeds), interrupted jobs resume at their first
// unfinished sweep leg. -fsync picks the durability/throughput trade,
// -store-retain bounds how many finished jobs compaction keeps, and
// POST /v1/store/compact rewrites the log on demand.
//
// The daemon is also its own worker fleet: -worker turns the process into a
// stateless leg executor serving POST /v1/legs (plus /healthz), and
// -worker-addrs points a coordinator at such daemons — legs are leased out
// remotely instead of (or in addition to) the in-process -workers, with
// -lease bounding each leg. -quota-burst/-quota-rate cap per-tenant
// admission.
//
// Structured logs (one line per admission decision, state transition,
// cancellation, timeout, and drain step) go to stderr in text or JSON form
// per -log-format. -debug-addr serves net/http/pprof on a second, separate
// listener so profiling endpoints are never exposed on the job API port.
//
// On SIGTERM/SIGINT the server stops admitting, finishes queued and running
// jobs, and exits 0; a second signal (or -drain-grace expiring) hard-cancels
// the remainder.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"timecache/internal/clock"
	"timecache/internal/jobstore"
	"timecache/internal/resultcache"
	"timecache/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "in-process leg executors (one pooled machine set each)")
		queue      = flag.Int("queue", 64, "admission queue depth; a full queue answers 429")
		jobTimeout = flag.Duration("job-timeout", 0, "default per-job deadline (0 = unbounded; jobs may set timeout_ms)")
		drainGrace = flag.Duration("drain-grace", 2*time.Minute, "how long a graceful drain may wait for in-flight jobs")
		logFormat  = flag.String("log-format", "text", "structured log encoding: text or json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		cacheEnts  = flag.Int("cache-entries", 512, "result-cache capacity in entries (0 disables the cache)")
		cacheBytes = flag.Int64("cache-bytes", 256<<20, "result-cache capacity in accounted bytes (0 = unbounded)")

		storeDir    = flag.String("store-dir", "", "durable job-store directory (empty = in-memory only, no restart recovery)")
		fsync       = flag.String("fsync", "always", "job-store sync policy: always (fsync per append) or none")
		storeRetain = flag.Int("store-retain", 0, "terminal jobs compaction keeps in the store (0 = all)")

		workerMode  = flag.Bool("worker", false, "run as a stateless leg-executor daemon (serves POST /v1/legs) instead of a coordinator")
		workerAddrs = flag.String("worker-addrs", "", "comma-separated base URLs of remote -worker daemons to execute legs on")
		lease       = flag.Duration("lease", 0, "per-leg lease; an executor overrunning it forfeits the leg (0 = no lease)")
		quotaBurst  = flag.Float64("quota-burst", 0, "per-tenant admission token-bucket capacity (0 = quotas off)")
		quotaRate   = flag.Float64("quota-rate", 1, "per-tenant token refill rate, tokens/second")
	)
	flag.Parse()
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timecache-serve:", err)
		os.Exit(2)
	}
	if *workerMode {
		if err := runWorker(*addr, logger); err != nil {
			fmt.Fprintln(os.Stderr, "timecache-serve:", err)
			os.Exit(1)
		}
		return
	}
	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *jobTimeout,
		Clock:          clock.Real{},
		Logger:         logger,
		StoreRetain:    *storeRetain,
		LeaseTimeout:   *lease,
		QuotaBurst:     *quotaBurst,
		QuotaRate:      *quotaRate,
	}
	if *workerAddrs != "" {
		for _, a := range strings.Split(*workerAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.WorkerAddrs = append(cfg.WorkerAddrs, strings.TrimSuffix(a, "/"))
			}
		}
	}
	if *storeDir != "" {
		var policy jobstore.SyncPolicy
		switch *fsync {
		case "always":
			policy = jobstore.SyncAlways
		case "none":
			policy = jobstore.SyncNone
		default:
			fmt.Fprintf(os.Stderr, "timecache-serve: -fsync %q: want always or none\n", *fsync)
			os.Exit(2)
		}
		store, err := jobstore.Open(*storeDir, jobstore.DiskOptions{Sync: policy})
		if err != nil {
			fmt.Fprintln(os.Stderr, "timecache-serve: open job store:", err)
			os.Exit(1)
		}
		defer store.Close()
		cfg.Store = store
	}
	if err := run(*addr, *debugAddr, cfg, *cacheEnts, *cacheBytes, *drainGrace, logger); err != nil {
		fmt.Fprintln(os.Stderr, "timecache-serve:", err)
		os.Exit(1)
	}
}

// runWorker serves the stateless leg-executor protocol until SIGTERM/SIGINT.
// A worker holds no job state at all — killing one mid-leg only forfeits a
// lease — so shutdown is immediate.
func runWorker(addr string, logger *slog.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	h := server.NewWorker(server.WorkerConfig{Clock: clock.Real{}, Logger: logger})
	httpSrv := &http.Server{Handler: h}
	fmt.Printf("timecache-serve: worker mode, serving legs on %s\n", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Info("worker signal received", "signal", sig.String())
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutCtx)
}

// buildLogger assembles the daemon's stderr logger from the flag values.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

func run(addr, debugAddr string, cfg server.Config, cacheEntries int, cacheBytes int64, drainGrace time.Duration, logger *slog.Logger) error {
	cacheDesc := "off"
	if cacheEntries > 0 {
		cfg.Cache = resultcache.New(
			resultcache.WithMaxEntries(cacheEntries),
			resultcache.WithMaxBytes(cacheBytes),
		)
		cacheDesc = fmt.Sprintf("%d entries / %d MiB", cacheEntries, cacheBytes>>20)
	}
	srv := server.New(cfg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	storeDesc := "off"
	if cfg.Store != nil {
		storeDesc = "on"
	}
	fmt.Printf("timecache-serve: listening on %s (%d workers, %d remote, queue %d, cache %s, store %s)\n",
		ln.Addr(), cfg.Workers, len(cfg.WorkerAddrs), cfg.QueueDepth, cacheDesc, storeDesc)

	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		// The default mux would pick pprof up via its init registrations,
		// but an explicit mux keeps the debug surface to exactly pprof and
		// independent of anything else that registers globally.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof debug server listening", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				logger.Error("pprof debug server exited", "error", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("timecache-serve: %s: draining (grace %s; signal again to hard-stop)\n", sig, drainGrace)
		logger.Info("signal received", "signal", sig.String(), "drain_grace", drainGrace)
	}

	// Stop admitting and let in-flight jobs finish. The grace deadline runs
	// on the server's injected clock; a second signal cuts it short.
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.DrainWithGrace(drainGrace) }()
	go func() {
		<-sigc
		fmt.Println("timecache-serve: second signal: hard-cancelling jobs")
		logger.Warn("second signal: hard-cancelling jobs")
		// Drain with an already-expired context: hard-cancels immediately.
		expired, cancel := context.WithCancel(context.Background())
		cancel()
		srv.Drain(expired)
	}()
	if err := <-drainErr; err != nil {
		fmt.Printf("timecache-serve: drain cut short: %v (all jobs reached terminal states)\n", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Println("timecache-serve: drained, exiting")
	return nil
}
