// Command timecache-serve is the simulation job service daemon: it exposes
// the experiment, attack, and sweep harness over a JSON/HTTP API so many
// clients can share one warm simulator fleet instead of forking CLIs.
//
// Usage:
//
//	timecache-serve -addr :8080 -workers 4 -queue 64
//
// Endpoints (see internal/server and EXPERIMENTS.md for the job-spec
// schema):
//
//	POST   /v1/jobs             submit a job (202; 429+Retry-After when full)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel (stops a running simulation mid-slice)
//	GET    /v1/jobs/{id}/events progress stream (SSE)
//	GET    /v1/jobs/{id}/result result as ?format=csv|md|json
//	GET    /v1/experiments      available experiment names
//	GET    /healthz /readyz /metrics
//
// On SIGTERM/SIGINT the server stops admitting, finishes queued and running
// jobs, and exits 0; a second signal (or -drain-grace expiring) hard-cancels
// the remainder.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"timecache/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "job executors (one pooled machine set each)")
		queue      = flag.Int("queue", 64, "admission queue depth; a full queue answers 429")
		jobTimeout = flag.Duration("job-timeout", 0, "default per-job deadline (0 = unbounded; jobs may set timeout_ms)")
		drainGrace = flag.Duration("drain-grace", 2*time.Minute, "how long a graceful drain may wait for in-flight jobs")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *jobTimeout, *drainGrace); err != nil {
		fmt.Fprintln(os.Stderr, "timecache-serve:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue int, jobTimeout, drainGrace time.Duration) error {
	srv := server.New(server.Config{
		Workers:        workers,
		QueueDepth:     queue,
		DefaultTimeout: jobTimeout,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("timecache-serve: listening on %s (%d workers, queue %d)\n",
		ln.Addr(), workers, queue)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("timecache-serve: %s: draining (grace %s; signal again to hard-stop)\n", sig, drainGrace)
	}

	// Stop admitting and let in-flight jobs finish. A second signal cuts the
	// grace period short.
	drainCtx, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	go func() {
		<-sigc
		fmt.Println("timecache-serve: second signal: hard-cancelling jobs")
		cancel()
	}()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Printf("timecache-serve: drain cut short: %v (all jobs reached terminal states)\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Println("timecache-serve: drained, exiting")
	return nil
}
