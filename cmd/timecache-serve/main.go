// Command timecache-serve is the simulation job service daemon: it exposes
// the experiment, attack, and sweep harness over a JSON/HTTP API so many
// clients can share one warm simulator fleet instead of forking CLIs.
//
// Usage:
//
//	timecache-serve -addr :8080 -workers 4 -queue 64 -log-format json
//
// Endpoints (see internal/server and EXPERIMENTS.md for the job-spec
// schema):
//
//	POST   /v1/jobs             submit a job (202; 429+Retry-After when full)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel (stops a running simulation mid-slice)
//	GET    /v1/jobs/{id}/events progress stream (SSE)
//	GET    /v1/jobs/{id}/result result as ?format=csv|md|json
//	GET    /v1/jobs/{id}/trace  per-job Chrome trace (lifecycle + leg spans)
//	GET    /v1/experiments      available experiment names
//	GET    /v1/cache/stats      result-cache accounting snapshot
//	DELETE /v1/cache            drop every cached result
//	GET    /healthz /readyz /metrics
//
// The daemon fronts the workers with a content-addressed result cache
// (bounded by -cache-entries and -cache-bytes; -cache-entries 0 disables
// it): a submission whose canonical spec matches a cached result is answered
// without simulating, concurrent identical submissions collapse onto one
// run, and every POST /v1/jobs response reports its disposition in the
// X-Timecache-Cache header (hit, miss, coalesced, or bypass — jobs can opt
// out per-submission with "no_cache": true).
//
// Structured logs (one line per admission decision, state transition,
// cancellation, timeout, and drain step) go to stderr in text or JSON form
// per -log-format. -debug-addr serves net/http/pprof on a second, separate
// listener so profiling endpoints are never exposed on the job API port.
//
// On SIGTERM/SIGINT the server stops admitting, finishes queued and running
// jobs, and exits 0; a second signal (or -drain-grace expiring) hard-cancels
// the remainder.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"timecache/internal/clock"
	"timecache/internal/resultcache"
	"timecache/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "job executors (one pooled machine set each)")
		queue      = flag.Int("queue", 64, "admission queue depth; a full queue answers 429")
		jobTimeout = flag.Duration("job-timeout", 0, "default per-job deadline (0 = unbounded; jobs may set timeout_ms)")
		drainGrace = flag.Duration("drain-grace", 2*time.Minute, "how long a graceful drain may wait for in-flight jobs")
		logFormat  = flag.String("log-format", "text", "structured log encoding: text or json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		cacheEnts  = flag.Int("cache-entries", 512, "result-cache capacity in entries (0 disables the cache)")
		cacheBytes = flag.Int64("cache-bytes", 256<<20, "result-cache capacity in accounted bytes (0 = unbounded)")
	)
	flag.Parse()
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timecache-serve:", err)
		os.Exit(2)
	}
	if err := run(*addr, *debugAddr, *workers, *queue, *cacheEnts, *cacheBytes, *jobTimeout, *drainGrace, logger); err != nil {
		fmt.Fprintln(os.Stderr, "timecache-serve:", err)
		os.Exit(1)
	}
}

// buildLogger assembles the daemon's stderr logger from the flag values.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

func run(addr, debugAddr string, workers, queue, cacheEntries int, cacheBytes int64, jobTimeout, drainGrace time.Duration, logger *slog.Logger) error {
	var rcache *resultcache.Cache
	cacheDesc := "off"
	if cacheEntries > 0 {
		rcache = resultcache.New(
			resultcache.WithMaxEntries(cacheEntries),
			resultcache.WithMaxBytes(cacheBytes),
		)
		cacheDesc = fmt.Sprintf("%d entries / %d MiB", cacheEntries, cacheBytes>>20)
	}
	srv := server.New(server.Config{
		Workers:        workers,
		QueueDepth:     queue,
		DefaultTimeout: jobTimeout,
		Clock:          clock.Real{},
		Logger:         logger,
		Cache:          rcache,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("timecache-serve: listening on %s (%d workers, queue %d, cache %s)\n",
		ln.Addr(), workers, queue, cacheDesc)

	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		// The default mux would pick pprof up via its init registrations,
		// but an explicit mux keeps the debug surface to exactly pprof and
		// independent of anything else that registers globally.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof debug server listening", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				logger.Error("pprof debug server exited", "error", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("timecache-serve: %s: draining (grace %s; signal again to hard-stop)\n", sig, drainGrace)
		logger.Info("signal received", "signal", sig.String(), "drain_grace", drainGrace)
	}

	// Stop admitting and let in-flight jobs finish. The grace deadline runs
	// on the server's injected clock; a second signal cuts it short.
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.DrainWithGrace(drainGrace) }()
	go func() {
		<-sigc
		fmt.Println("timecache-serve: second signal: hard-cancelling jobs")
		logger.Warn("second signal: hard-cancelling jobs")
		// Drain with an already-expired context: hard-cancels immediately.
		expired, cancel := context.WithCancel(context.Background())
		cancel()
		srv.Drain(expired)
	}()
	if err := <-drainErr; err != nil {
		fmt.Printf("timecache-serve: drain cut short: %v (all jobs reached terminal states)\n", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Println("timecache-serve: drained, exiting")
	return nil
}
