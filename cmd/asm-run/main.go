// Command asm-run assembles and executes μRISC programs on a simulated
// machine, printing the program's output, exit code, and cache behavior —
// a REPL-style driver for the ISA substrate.
//
// Usage:
//
//	asm-run prog.s                    # run one program, print results
//	asm-run -mode timecache -n 2 prog.s   # two shared-text instances
//	echo 'movi r1, 42
//	sys 0' | asm-run -               # read source from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"timecache"
	"timecache/internal/stats"
)

func main() {
	var (
		modeFlag = flag.String("mode", "baseline", "baseline | timecache | ftm")
		n        = flag.Int("n", 1, "instances to run (sharing text when > 1)")
		max      = flag.Uint64("max", 1_000_000_000, "cycle budget")
		verbose  = flag.Bool("v", false, "print per-cache statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: asm-run [flags] <file.s | ->"))
	}

	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var mode timecache.Mode
	switch *modeFlag {
	case "baseline":
		mode = timecache.Baseline
	case "timecache":
		mode = timecache.TimeCache
	case "ftm":
		mode = timecache.FTM
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeFlag))
	}

	sys, err := timecache.New(timecache.Config{Mode: mode})
	if err != nil {
		fatal(err)
	}
	var procs []*timecache.Process
	for i := 0; i < *n; i++ {
		opts := timecache.LoadOptions{Name: fmt.Sprintf("p%d", i+1)}
		if *n > 1 {
			opts.ShareKey = "asm-run"
		}
		p, err := sys.LoadAsm(string(src), opts)
		if err != nil {
			fatal(err)
		}
		procs = append(procs, p)
	}
	cycles := sys.Run(*max)

	for i, p := range procs {
		fmt.Printf("process %d: ", i+1)
		switch {
		case p.Err() != nil:
			fmt.Printf("FAULT: %v\n", p.Err())
		case !p.Exited():
			fmt.Printf("did not finish within %d cycles\n", *max)
		default:
			fmt.Printf("exit=%d instructions=%d\n", p.ExitCode(), p.Stats().Instructions)
		}
		for _, v := range p.Output() {
			fmt.Printf("  output: %d (0x%x)\n", v, v)
		}
	}
	fmt.Printf("total: %d cycles, %d context switches\n", cycles, sys.Stats().ContextSwitches)
	if *verbose {
		tb := stats.NewTable("cache", "accesses", "hits", "misses", "first-access")
		for _, c := range sys.Stats().Caches {
			tb.Add(c.Name, c.Accesses, c.Hits, c.Misses, c.FirstAccess)
		}
		fmt.Print(tb.String())
	}
	for _, p := range procs {
		if p.Err() != nil || !p.Exited() {
			os.Exit(1)
		}
	}
}

func readSource(arg string) ([]byte, error) {
	if arg == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(arg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asm-run:", err)
	os.Exit(1)
}
