// Command attack-demo mounts the paper's attacks against the baseline and
// TimeCache configurations and reports what leaks.
//
// Usage:
//
//	attack-demo                 # run every attack
//	attack-demo -attack rsa     # just the flush+reload RSA extraction
//	attack-demo -attack rsa -bits 128 -seed 7
//
// Attacks: micro, rsa, evictreload, flushflush, primeprobe, lru,
// coherence, evicttime.
package main

import (
	"flag"
	"fmt"
	"os"

	"timecache"
)

func main() {
	var (
		which = flag.String("attack", "all", "attack to run (micro|rsa|evictreload|flushflush|primeprobe|lru|coherence|evicttime|all)")
		bits  = flag.Int("bits", 64, "secret/key length in bits")
		seed  = flag.Uint64("seed", 42, "secret/key seed")
	)
	flag.Parse()

	attacks := map[string]func(int, uint64) error{
		"micro":       func(int, uint64) error { return micro() },
		"rsa":         rsaAttack,
		"evictreload": evictReload,
		"flushflush":  flushFlush,
		"primeprobe":  primeProbe,
		"lru":         lru,
		"coherence":   coherence,
		"smt":         smt,
		"evicttime":   func(int, uint64) error { return evictTime() },
	}
	order := []string{"micro", "rsa", "evictreload", "flushflush", "primeprobe", "lru", "coherence", "smt", "evicttime"}

	run := func(name string) {
		fmt.Printf("=== %s ===\n", name)
		if err := attacks[name](*bits, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "attack-demo: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *which == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	if _, ok := attacks[*which]; !ok {
		fmt.Fprintf(os.Stderr, "attack-demo: unknown attack %q\n", *which)
		os.Exit(1)
	}
	run(*which)
}

func micro() error {
	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		r, err := timecache.RunMicrobenchmark(mode)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s: %3d/%d shared lines observed as hits (mean probe %.1f cycles)\n",
			mode, r.Hits, r.Lines, r.MeanLatency)
	}
	fmt.Println("paper §VI-A1: the attacker must see zero hits under the defense")
	return nil
}

func rsaAttack(bits int, seed uint64) error {
	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		r, err := timecache.RunRSAAttack(mode, bits, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s: accuracy %.1f%%, %d probe hits, victim correct: %v\n",
			mode, r.Accuracy*100, r.Hits, r.VictimCorrect)
		fmt.Printf("  key      : %s\n  recovered: %s\n", r.KeyBits, r.RecoveredBits)
	}
	fmt.Println("paper §VI-A2: flush+reload extracts the key on the baseline; TimeCache blinds it")
	return nil
}

func evictReload(bits int, seed uint64) error {
	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		r, err := timecache.RunEvictReloadAttack(mode, bits, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s: accuracy %.1f%%, %d probe hits\n", mode, r.Accuracy*100, r.Hits)
	}
	fmt.Println("evict+reload (no clflush needed) is blocked the same way")
	return nil
}

func flushFlush(bits int, seed uint64) error {
	leaky, err := timecache.RunFlushFlushAttack(timecache.TimeCache, false, bits, seed)
	if err != nil {
		return err
	}
	fixed, err := timecache.RunFlushFlushAttack(timecache.TimeCache, true, bits, seed)
	if err != nil {
		return err
	}
	fmt.Printf("timecache, variable-time clflush: accuracy %.1f%% (leaks)\n", leaky.Accuracy*100)
	fmt.Printf("timecache, constant-time clflush: accuracy %.1f%% (mitigated)\n", fixed.Accuracy*100)
	fmt.Println("paper §VII-C: flush+flush needs the constant-time clflush mitigation")
	return nil
}

func primeProbe(bits int, seed uint64) error {
	tc, err := timecache.RunPrimeProbeAttack(timecache.TimeCache, false, bits, seed)
	if err != nil {
		return err
	}
	rnd, err := timecache.RunPrimeProbeAttack(timecache.Baseline, true, bits, seed)
	if err != nil {
		return err
	}
	fmt.Printf("timecache, normal index    : accuracy %.1f%% (contention is out of scope)\n", tc.Accuracy*100)
	fmt.Printf("baseline, randomized index : accuracy %.1f%% (CEASER-lite defeats it)\n", rnd.Accuracy*100)
	fmt.Println("paper §IX: pair TimeCache with a randomizing cache for a holistic defense")
	return nil
}

func lru(bits int, seed uint64) error {
	det, err := timecache.RunLRUAttack(timecache.TimeCache, "lru", bits, seed)
	if err != nil {
		return err
	}
	rnd, err := timecache.RunLRUAttack(timecache.TimeCache, "random", bits, seed)
	if err != nil {
		return err
	}
	fmt.Printf("timecache + true LRU        : accuracy %.1f%% (replacement state leaks)\n", det.Accuracy*100)
	fmt.Printf("timecache + random replace  : accuracy %.1f%% (channel destroyed)\n", rnd.Accuracy*100)
	fmt.Println("paper §VII-A: LRU attacks are the randomizing cache's job")
	return nil
}

func coherence(bits int, seed uint64) error {
	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		r, err := timecache.RunCoherenceAttack(mode, bits, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s: accuracy %.1f%%\n", mode, r.Accuracy*100)
	}
	fmt.Println("paper §VII-B: waiting for the DRAM response hides the remote-L1 forward")
	return nil
}

func smt(bits int, seed uint64) error {
	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		r, err := timecache.RunSMTAttack(mode, bits, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s: accuracy %.1f%%\n", mode, r.Accuracy*100)
	}
	fmt.Println("paper §III: hyperthread attackers sharing the L1 are inside the threat model")
	return nil
}

func evictTime() error {
	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		r, err := timecache.RunEvictTimeAttack(mode, 2000)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s: victim %d cycles flushed vs %d undisturbed (leaks: %v)\n",
			mode, r.VictimCyclesFlushed, r.VictimCyclesUndisturbed, r.Leaks)
	}
	fmt.Println("paper §VII-D: evict+time persists but stays noisy and impractical")
	return nil
}
