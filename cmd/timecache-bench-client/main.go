// Command timecache-bench-client load-tests a running timecache-serve: it
// fires N jobs at bounded concurrency, respects 429 backpressure (honoring
// Retry-After), waits for every job to finish, and reports end-to-end
// latency percentiles.
//
// Usage:
//
//	timecache-bench-client -addr http://localhost:8080 -n 64 -c 64
//	timecache-bench-client -addr ... -n 1 -pairs 2Xlbm,2Xgobmk,leslie+gobmk \
//	    -instrs 60000 -warmup 40000 -want-golden results/golden/table2_slice.csv
//
// With -want-golden the first job's CSV result is compared byte-for-byte
// against the given file; a mismatch exits nonzero (the CI smoke job uses
// this to prove the HTTP path reproduces the golden artifact).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"timecache/internal/stats"
)

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8080", "server base URL")
		n          = flag.Int("n", 64, "total jobs to submit")
		c          = flag.Int("c", 64, "concurrent in-flight submissions")
		experiment = flag.String("experiment", "table2", "experiment name")
		pairs      = flag.String("pairs", "2Xlbm", "comma-separated pair labels (table2/llc-sweep/ablation)")
		instrs     = flag.Uint64("instrs", 20_000, "instructions per process")
		warmup     = flag.Uint64("warmup", 10_000, "warmup instructions per process")
		timeout    = flag.Duration("timeout", 10*time.Minute, "overall client deadline")
		wantGolden = flag.String("want-golden", "", "compare the first job's CSV result to this file byte-for-byte")
	)
	flag.Parse()
	if err := run(*addr, *n, *c, *experiment, *pairs, *instrs, *warmup, *timeout, *wantGolden); err != nil {
		fmt.Fprintln(os.Stderr, "timecache-bench-client:", err)
		os.Exit(1)
	}
}

type clientResult struct {
	latency time.Duration
	retries int
	csv     string
	err     error
}

func run(addr string, n, c int, experiment, pairs string, instrs, warmup uint64, timeout time.Duration, wantGolden string) error {
	spec := map[string]any{
		"experiment":      experiment,
		"instrs_per_proc": instrs,
		"warmup_instrs":   warmup,
	}
	if pairs != "" {
		spec["pairs"] = strings.Split(pairs, ",")
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: timeout}
	deadline := time.Now().Add(timeout)
	results := make([]clientResult, n)
	sem := make(chan struct{}, max(1, c))
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = oneJob(client, addr, body, deadline)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	var lats []float64
	retries := 0
	failed := 0
	for i, r := range results {
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "job %d: %v\n", i, r.err)
			continue
		}
		lats = append(lats, float64(r.latency.Milliseconds()))
		retries += r.retries
	}

	tab := stats.NewTable("metric", "value")
	tab.Add("jobs", fmt.Sprintf("%d", n))
	tab.Add("failed", fmt.Sprintf("%d", failed))
	tab.Add("429-retries", fmt.Sprintf("%d", retries))
	tab.Add("wall", wall.Round(time.Millisecond).String())
	for _, p := range []float64{50, 90, 99} {
		tab.Add(fmt.Sprintf("p%.0f-ms", p), stats.Percentile(lats, p/100))
	}
	if n > 0 && wall > 0 {
		tab.Add("jobs-per-sec", float64(n-failed)/wall.Seconds())
	}
	fmt.Print(tab.String())

	if failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", failed, n)
	}
	if wantGolden != "" {
		want, err := os.ReadFile(wantGolden)
		if err != nil {
			return err
		}
		if !bytes.Equal(want, []byte(results[0].csv)) {
			return fmt.Errorf("result diverged from %s\n--- want ---\n%s--- got ---\n%s",
				wantGolden, want, results[0].csv)
		}
		fmt.Printf("result matches %s byte-for-byte\n", wantGolden)
	}
	return nil
}

// oneJob submits one job (retrying on 429 per Retry-After), waits for a
// terminal state, and fetches the CSV result. Latency is submit-to-result.
func oneJob(client *http.Client, addr string, spec []byte, deadline time.Time) clientResult {
	var res clientResult
	start := time.Now()

	var id string
	for {
		if time.Now().After(deadline) {
			res.err = fmt.Errorf("deadline exceeded before admission")
			return res
		}
		resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			res.err = err
			return res
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			res.retries++
			wait := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			res.err = fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
			return res
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			res.err = fmt.Errorf("submit: decode: %w", err)
			return res
		}
		id = st.ID
		break
	}

	for {
		if time.Now().After(deadline) {
			res.err = fmt.Errorf("deadline exceeded waiting for %s", id)
			return res
		}
		resp, err := client.Get(addr + "/v1/jobs/" + id)
		if err != nil {
			res.err = err
			return res
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			res.err = fmt.Errorf("status %s: decode: %w", id, err)
			return res
		}
		switch st.State {
		case "done":
		case "failed", "cancelled":
			res.err = fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
			return res
		default:
			time.Sleep(25 * time.Millisecond)
			continue
		}
		break
	}

	resp, err := client.Get(addr + "/v1/jobs/" + id + "/result")
	if err != nil {
		res.err = err
		return res
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		res.err = fmt.Errorf("result %s: %s", id, resp.Status)
		return res
	}
	res.csv = string(body)
	res.latency = time.Since(start)
	return res
}
