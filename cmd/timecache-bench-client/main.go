// Command timecache-bench-client load-tests a running timecache-serve: it
// fires N jobs at bounded concurrency, respects 429 backpressure (honoring
// Retry-After), waits for every job to finish, and reports end-to-end
// latency percentiles.
//
// Usage:
//
//	timecache-bench-client -addr http://localhost:8080 -n 64 -c 64
//	timecache-bench-client -addr ... -n 64 -c 16 -dash
//	timecache-bench-client -addr ... -n 1 -pairs 2Xlbm,2Xgobmk,leslie+gobmk \
//	    -instrs 60000 -warmup 40000 -want-golden results/golden/table2_slice.csv
//
// With -want-golden the first job's CSV result is compared byte-for-byte
// against the given file; a mismatch exits nonzero (the CI smoke job uses
// this to prove the HTTP path reproduces the golden artifact).
//
// With -dash the client renders a live terminal dashboard while the load
// runs: client-side throughput and latency percentiles next to the server's
// own view of itself (queue depth, running jobs, SSE subscribers — scraped
// from /metrics and parsed with the same strict exposition parser the tests
// use), drawn as textplot sparklines.
//
// -connect-retries makes startup races benign: when the server is not yet
// accepting connections (connection refused — e.g. the CI smoke job starts
// timecache-serve and the client in the same breath, or the kill-and-restart
// step reconnects while the server replays its store), the client retries
// the submission a bounded number of times with jittered exponential
// backoff instead of failing the whole run.
//
// -repeat-frac exercises the server's content-addressed result cache: that
// fraction of submissions reuses one spec (the rest get unique instruction
// budgets, so they can never hit). The summary then reports each
// disposition's count (from the X-Timecache-Cache response header), the hit
// rate, and separate latency percentiles for cached answers (p50/p99-hit-ms)
// versus simulated ones (p50/p99-miss-ms, which also covers coalesced and
// bypassed jobs — they wait for a real simulation).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"timecache/internal/clock"
	"timecache/internal/promtext"
	"timecache/internal/stats"
	"timecache/internal/textplot"
)

// clk drives every wait in the client (connect backoff, 429 Retry-After,
// status polling, deadlines). Tests swap in a clock.Fake so retry schedules
// are exercised without real sleeps.
var clk clock.WallClock = clock.Real{}

// sleep blocks for d on clk.
func sleep(d time.Duration) {
	ch := make(chan struct{})
	clk.AfterFunc(d, func() { close(ch) })
	<-ch
}

// connectBackoff returns the jittered exponential delay before connect
// attempt n (1-based): half the window fixed, half uniform, with the window
// doubling from 100ms and capped at 2s. The fixed half keeps the delay
// nonzero so a refused connection never busy-loops.
func connectBackoff(n int) time.Duration {
	window := 100 * time.Millisecond
	for i := 1; i < n && window < 2*time.Second; i++ {
		window *= 2
	}
	if window > 2*time.Second {
		window = 2 * time.Second
	}
	return window/2 + time.Duration(rand.Int63n(int64(window/2)+1))
}

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8080", "server base URL")
		n          = flag.Int("n", 64, "total jobs to submit")
		c          = flag.Int("c", 64, "concurrent in-flight submissions")
		experiment = flag.String("experiment", "table2", "experiment name")
		pairs      = flag.String("pairs", "2Xlbm", "comma-separated pair labels (table2/llc-sweep/ablation)")
		instrs     = flag.Uint64("instrs", 20_000, "instructions per process")
		warmup     = flag.Uint64("warmup", 10_000, "warmup instructions per process")
		timeout    = flag.Duration("timeout", 10*time.Minute, "overall client deadline")
		wantGolden = flag.String("want-golden", "", "compare the first job's CSV result to this file byte-for-byte")
		dash       = flag.Bool("dash", false, "render a live terminal dashboard while the load runs")
		dashEvery  = flag.Duration("dash-interval", 500*time.Millisecond, "dashboard refresh/sample interval")
		repeatFrac = flag.Float64("repeat-frac", 0, "fraction of submissions reusing one spec (0 = every job unique, 1 = all identical)")
		connRetry  = flag.Int("connect-retries", 5, "extra submission attempts when the connection is refused, with jittered exponential backoff")
	)
	flag.Parse()
	if *repeatFrac < 0 || *repeatFrac > 1 {
		fmt.Fprintln(os.Stderr, "timecache-bench-client: -repeat-frac must be in [0, 1]")
		os.Exit(2)
	}
	if *connRetry < 0 {
		fmt.Fprintln(os.Stderr, "timecache-bench-client: -connect-retries must be >= 0")
		os.Exit(2)
	}
	if err := run(*addr, *n, *c, *experiment, *pairs, *instrs, *warmup, *timeout, *wantGolden, *dash, *dashEvery, *repeatFrac, *connRetry); err != nil {
		fmt.Fprintln(os.Stderr, "timecache-bench-client:", err)
		os.Exit(1)
	}
}

type clientResult struct {
	id          string
	latency     time.Duration
	retries     int // 429 backpressure retries
	connRetries int // connection-refused retries
	csv         string
	cache       string // X-Timecache-Cache disposition ("" when the server has no cache)
	err         error
}

// tracker is the dashboard's shared view of client-side progress.
type tracker struct {
	mu   sync.Mutex
	done int
	lats []float64 // milliseconds, completed jobs only
}

func (t *tracker) complete(latMS float64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	if ok {
		t.lats = append(t.lats, latMS)
	}
}

func (t *tracker) snapshot() (int, []float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done, append([]float64(nil), t.lats...)
}

func run(addr string, n, c int, experiment, pairs string, instrs, warmup uint64, timeout time.Duration, wantGolden string, dash bool, dashEvery time.Duration, repeatFrac float64, connRetry int) error {
	spec := map[string]any{
		"experiment":      experiment,
		"instrs_per_proc": instrs,
		"warmup_instrs":   warmup,
	}
	if pairs != "" {
		spec["pairs"] = strings.Split(pairs, ",")
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}

	// Per-job bodies: job 0 always submits the base spec (so -want-golden
	// stays meaningful), and each later job either repeats it — decided by
	// error diffusion, so the repeat count tracks repeatFrac exactly for any
	// n — or gets a unique instruction budget that cannot collide with any
	// other submission's cache key.
	bodies := make([][]byte, n)
	repeated, uniques := 0, 0
	for i := 0; i < n; i++ {
		if i == 0 || float64(repeated) < repeatFrac*float64(i) {
			if i > 0 {
				repeated++
			}
			bodies[i] = body
			continue
		}
		uniques++
		uspec := make(map[string]any, len(spec))
		for k, v := range spec {
			uspec[k] = v
		}
		uspec["instrs_per_proc"] = instrs + uint64(uniques)
		ub, err := json.Marshal(uspec)
		if err != nil {
			return err
		}
		bodies[i] = ub
	}

	client := &http.Client{Timeout: timeout}
	deadline := clk.Now().Add(timeout)
	results := make([]clientResult, n)
	sem := make(chan struct{}, max(1, c))
	tr := &tracker{}
	stopDash := make(chan struct{})
	var dashWG sync.WaitGroup
	if dash {
		dashWG.Add(1)
		go func() {
			defer dashWG.Done()
			dashboard(client, addr, tr, n, dashEvery, stopDash)
		}()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = oneJob(client, addr, bodies[i], deadline, connRetry)
			tr.complete(float64(results[i].latency.Milliseconds()), results[i].err == nil)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	if dash {
		close(stopDash)
		dashWG.Wait()
	}

	var lats, hitLats, missLats []float64
	retries, connRetries := 0, 0
	failed := 0
	hits, misses, coalesced, bypass := 0, 0, 0, 0
	for i, r := range results {
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "job %d: %v\n", i, r.err)
			continue
		}
		// Microsecond resolution: cache hits finish well under a millisecond,
		// so whole-ms percentiles would flatten them to zero.
		ms := float64(r.latency.Microseconds()) / 1000
		lats = append(lats, ms)
		retries += r.retries
		connRetries += r.connRetries
		switch r.cache {
		case "hit":
			hits++
			hitLats = append(hitLats, ms)
		default:
			// miss, coalesced, bypass, or "" (no cache on the server): the
			// job waited for a real simulation.
			switch r.cache {
			case "miss":
				misses++
			case "coalesced":
				coalesced++
			case "bypass":
				bypass++
			}
			missLats = append(missLats, ms)
		}
	}

	tab := stats.NewTable("metric", "value")
	tab.Add("jobs", fmt.Sprintf("%d", n))
	tab.Add("failed", fmt.Sprintf("%d", failed))
	tab.Add("429-retries", fmt.Sprintf("%d", retries))
	tab.Add("connect-retries", fmt.Sprintf("%d", connRetries))
	tab.Add("wall", wall.Round(time.Millisecond).String())
	for _, p := range []float64{50, 90, 99} {
		tab.Add(fmt.Sprintf("p%.0f-ms", p), stats.Percentile(lats, p/100))
	}
	if n > 0 && wall > 0 {
		tab.Add("jobs-per-sec", float64(n-failed)/wall.Seconds())
	}
	if hits+misses+coalesced+bypass > 0 {
		tab.Add("cache-hits", fmt.Sprintf("%d", hits))
		tab.Add("cache-misses", fmt.Sprintf("%d", misses))
		tab.Add("cache-coalesced", fmt.Sprintf("%d", coalesced))
		tab.Add("cache-bypass", fmt.Sprintf("%d", bypass))
		tab.Add("hit-rate", float64(hits)/float64(n-failed))
		if len(hitLats) > 0 {
			tab.Add("p50-hit-ms", stats.Percentile(hitLats, 0.50))
			tab.Add("p99-hit-ms", stats.Percentile(hitLats, 0.99))
		}
		if len(missLats) > 0 {
			tab.Add("p50-miss-ms", stats.Percentile(missLats, 0.50))
			tab.Add("p99-miss-ms", stats.Percentile(missLats, 0.99))
		}
	}
	if n > 0 && results[0].id != "" {
		tab.Add("first-job", results[0].id)
	}
	// The CI smoke job fetches this job's trace and validates its lifecycle
	// spans; hits and coalesced jobs never reach a worker, so the first job
	// that actually simulated is the one with queue-wait/run/render spans.
	for _, r := range results {
		if r.err == nil && r.id != "" && r.cache != "hit" && r.cache != "coalesced" {
			tab.Add("first-run-job", r.id)
			break
		}
	}
	fmt.Print(tab.String())

	if failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", failed, n)
	}
	if wantGolden != "" {
		want, err := os.ReadFile(wantGolden)
		if err != nil {
			return err
		}
		if !bytes.Equal(want, []byte(results[0].csv)) {
			return fmt.Errorf("result diverged from %s\n--- want ---\n%s--- got ---\n%s",
				wantGolden, want, results[0].csv)
		}
		fmt.Printf("result matches %s byte-for-byte\n", wantGolden)
	}
	return nil
}

// dashboard samples client progress and the server's /metrics every interval
// and redraws a sparkline view until stop closes, then leaves the final
// frame on screen.
func dashboard(client *http.Client, addr string, tr *tracker, total int, interval time.Duration, stop <-chan struct{}) {
	var thr, queueDepth, running, subs []float64
	prevDone := 0
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			fmt.Print(renderDash(tr, total, thr, queueDepth, running, subs, true))
			return
		case <-tick.C:
		}
		done, _ := tr.snapshot()
		thr = append(thr, float64(done-prevDone)/interval.Seconds())
		prevDone = done
		if m := scrape(client, addr); m != nil {
			queueDepth = append(queueDepth, sampleValue(m, "timecache_queue_depth"))
			running = append(running, sampleValue(m, "timecache_jobs_running"))
			subs = append(subs, sampleValue(m, "timecache_sse_subscribers"))
		}
		// Home the cursor and clear so the dashboard redraws in place.
		fmt.Print("\033[H\033[2J" + renderDash(tr, total, thr, queueDepth, running, subs, false))
	}
}

func renderDash(tr *tracker, total int, thr, queueDepth, running, subs []float64, final bool) string {
	done, lats := tr.snapshot()
	var b strings.Builder
	state := "running"
	if final {
		state = "final"
	}
	fmt.Fprintf(&b, "timecache-bench-client — %d/%d jobs done (%s)\n\n", done, total, state)
	ts := textplot.TimeSeries{Title: "load (client) / server ops surface", Width: 50, Format: "%.2f"}
	ts.Add("jobs/sec", thr)
	ts.Add("queue depth", queueDepth)
	ts.Add("running", running)
	ts.Add("sse subs", subs)
	b.WriteString(ts.String())
	if len(lats) > 0 {
		fmt.Fprintf(&b, "\nlatency ms: p50=%.0f p90=%.0f p99=%.0f (n=%d)\n",
			stats.Percentile(lats, 0.50), stats.Percentile(lats, 0.90), stats.Percentile(lats, 0.99), len(lats))
	}
	return b.String()
}

// scrape fetches and parses /metrics; nil on any failure (the dashboard
// simply skips the sample).
func scrape(client *http.Client, addr string) *promtext.Metrics {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	m, err := promtext.Parse(resp.Body)
	if err != nil {
		return nil
	}
	return m
}

func sampleValue(m *promtext.Metrics, name string) float64 {
	if s := m.Sample(name); s != nil {
		return s.Value
	}
	return 0
}

// oneJob submits one job (retrying on 429 per Retry-After and up to
// connRetry times on connection refused), waits for a terminal state, and
// fetches the CSV result. Latency is submit-to-result.
func oneJob(client *http.Client, addr string, spec []byte, deadline time.Time, connRetry int) clientResult {
	var res clientResult
	start := clk.Now()

	for {
		if clk.Now().After(deadline) {
			res.err = fmt.Errorf("deadline exceeded before admission")
			return res
		}
		resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			if errors.Is(err, syscall.ECONNREFUSED) && res.connRetries < connRetry {
				res.connRetries++
				sleep(connectBackoff(res.connRetries))
				continue
			}
			res.err = err
			return res
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			res.retries++
			wait := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			res.err = fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
			return res
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			res.err = fmt.Errorf("submit: decode: %w", err)
			return res
		}
		res.id = st.ID
		res.cache = resp.Header.Get("X-Timecache-Cache")
		break
	}

	for {
		if clk.Now().After(deadline) {
			res.err = fmt.Errorf("deadline exceeded waiting for %s", res.id)
			return res
		}
		resp, err := client.Get(addr + "/v1/jobs/" + res.id)
		if err != nil {
			res.err = err
			return res
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			res.err = fmt.Errorf("status %s: decode: %w", res.id, err)
			return res
		}
		switch st.State {
		case "done":
		case "failed", "cancelled":
			res.err = fmt.Errorf("job %s %s: %s", res.id, st.State, st.Error)
			return res
		default:
			sleep(25 * time.Millisecond)
			continue
		}
		break
	}

	resp, err := client.Get(addr + "/v1/jobs/" + res.id + "/result")
	if err != nil {
		res.err = err
		return res
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		res.err = fmt.Errorf("result %s: %s", res.id, resp.Status)
		return res
	}
	res.csv = string(body)
	res.latency = clk.Now().Sub(start)
	return res
}
