package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"timecache/internal/clock"
)

// refusingTransport rejects the first `failures` POST submissions with a
// wrapped ECONNREFUSED — the same error shape a dial against a dead server
// produces — and forwards everything else to the real transport.
type refusingTransport struct {
	failures int32
	posts    atomic.Int32
	base     http.RoundTripper
}

func (t *refusingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Method == http.MethodPost && t.posts.Add(1) <= t.failures {
		return nil, &net.OpError{Op: "dial", Net: "tcp",
			Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}
	}
	return t.base.RoundTrip(r)
}

// stubServer answers the minimal job lifecycle: accept, immediately done,
// fixed CSV result.
func stubServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": "job-1"})
	})
	mux.HandleFunc("GET /v1/jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"state": "done"})
	})
	mux.HandleFunc("GET /v1/jobs/job-1/result", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("pair,leakage\n"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// withFakeClock swaps the package clock for a Fake and returns it alongside
// a driver that advances fake time until done closes, so sleeps inside
// oneJob resolve without real waiting.
func withFakeClock(t *testing.T) (*clock.Fake, chan struct{}) {
	t.Helper()
	fake := clock.NewFake(time.Unix(0, 0))
	prev := clk
	clk = fake
	t.Cleanup(func() { clk = prev })
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				fake.Advance(500 * time.Millisecond)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	return fake, done
}

func TestConnectRetrySucceedsAfterRefusals(t *testing.T) {
	ts := stubServer(t)
	tr := &refusingTransport{failures: 2, base: ts.Client().Transport}
	client := &http.Client{Transport: tr}
	_, done := withFakeClock(t)
	defer close(done)

	res := oneJob(client, ts.URL, []byte(`{}`), clk.Now().Add(time.Hour), 3)
	if res.err != nil {
		t.Fatalf("oneJob failed despite retry budget: %v", res.err)
	}
	if res.connRetries != 2 {
		t.Fatalf("connRetries = %d, want 2", res.connRetries)
	}
	if got := tr.posts.Load(); got != 3 {
		t.Fatalf("POST attempts = %d, want 3 (2 refused + 1 accepted)", got)
	}
	if res.csv != "pair,leakage\n" {
		t.Fatalf("csv = %q", res.csv)
	}
}

func TestConnectRetryBudgetExhausted(t *testing.T) {
	ts := stubServer(t)
	tr := &refusingTransport{failures: 100, base: ts.Client().Transport}
	client := &http.Client{Transport: tr}
	_, done := withFakeClock(t)
	defer close(done)

	res := oneJob(client, ts.URL, []byte(`{}`), clk.Now().Add(time.Hour), 2)
	if res.err == nil {
		t.Fatal("oneJob succeeded, want error after budget exhausted")
	}
	if res.connRetries != 2 {
		t.Fatalf("connRetries = %d, want 2", res.connRetries)
	}
	if got := tr.posts.Load(); got != 3 {
		t.Fatalf("POST attempts = %d, want 3 (initial + 2 retries)", got)
	}
}

func TestConnectRetryDisabled(t *testing.T) {
	ts := stubServer(t)
	tr := &refusingTransport{failures: 1, base: ts.Client().Transport}
	client := &http.Client{Transport: tr}

	res := oneJob(client, ts.URL, []byte(`{}`), clk.Now().Add(time.Hour), 0)
	if res.err == nil {
		t.Fatal("oneJob succeeded, want immediate failure with retries disabled")
	}
	if got := tr.posts.Load(); got != 1 {
		t.Fatalf("POST attempts = %d, want 1", got)
	}
}

func TestConnectBackoffBounds(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for i := 0; i < 50; i++ {
			d := connectBackoff(n)
			if d <= 0 {
				t.Fatalf("connectBackoff(%d) = %v, want > 0", n, d)
			}
			if d > 2*time.Second {
				t.Fatalf("connectBackoff(%d) = %v, want <= 2s", n, d)
			}
		}
	}
}
