// Command trace-tool records workload-model memory traces to files,
// inspects them, and replays them through configurable machines — so a
// trace captured once can be re-run against baseline and TimeCache
// hierarchies (or different cache sizes) for exact A/B comparisons.
//
// Usage:
//
//	trace-tool record -workload gobmk -instrs 100000 -o gobmk.trace
//	trace-tool info   -i gobmk.trace
//	trace-tool replay -i gobmk.trace -mode timecache -llc 1048576
package main

import (
	"flag"
	"fmt"
	"os"

	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/machine"
	"timecache/internal/mem"
	"timecache/internal/stats"
	"timecache/internal/trace"
	"timecache/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		fatal(fmt.Errorf("usage: trace-tool record|info|replay [flags]"))
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
}

// machineFlags registers the machine-shape flags shared by record and
// replay and returns a builder that assembles the configured machine.
func machineFlags(fs *flag.FlagSet) func(mode cache.SecMode) *kernel.Kernel {
	frames := fs.Int("frames", 16384, "physical memory frames (64 MB default)")
	llc := fs.Int("llc", 0, "LLC size in bytes (0 = paper default, 2 MB)")
	slice := fs.Uint64("slice", 0, "scheduler time slice in cycles (0 = default)")
	return func(mode cache.SecMode) *kernel.Kernel {
		m := machine.New(machine.Config{
			Mode:        mode,
			LLCSize:     *llc,
			SliceCycles: *slice,
			PhysFrames:  *frames,
		})
		return m.Kernel()
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("workload", "gobmk", "SPEC workload model to record")
	instrs := fs.Uint64("instrs", 100_000, "instructions to record")
	seed := fs.Uint64("seed", 7, "workload seed")
	out := fs.String("o", "workload.trace", "output trace file")
	build := machineFlags(fs)
	fs.Parse(args)

	prof, err := workload.Spec(*name)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()

	k := build(cache.SecOff)
	as, err := workload.BuildSharedAS(k, prof)
	if err != nil {
		return err
	}
	w := trace.NewWriter(f)
	rec := &trace.RecordingProc{Inner: workload.NewProc(prof, *instrs, *seed), W: w}
	if _, err := k.Spawn(*name, rec, as, 0); err != nil {
		return err
	}
	k.Run(1 << 62)
	if rec.Err != nil {
		return rec.Err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d records from %s (%d instructions) to %s\n",
		w.Count(), *name, *instrs, *out)
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "workload.trace", "trace file")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.NewReader(f).ReadAll()
	if err != nil {
		return err
	}
	counts := map[trace.Kind]int{}
	lines := map[uint64]bool{}
	for _, r := range recs {
		counts[r.Kind]++
		switch r.Kind {
		case trace.KindFetch, trace.KindLoad, trace.KindStore, trace.KindFlush:
			lines[r.Addr&^63] = true
		}
	}
	fmt.Printf("%s: %d records, %d distinct lines touched\n", *in, len(recs), len(lines))
	tb := stats.NewTable("kind", "count")
	for k := trace.Kind(0); counts[k] > 0 || k <= trace.KindInstret; k++ {
		tb.Add(k.String(), counts[k])
	}
	fmt.Print(tb.String())
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "workload.trace", "trace file")
	modeFlag := fs.String("mode", "timecache", "baseline | timecache | ftm")
	build := machineFlags(fs)
	fs.Parse(args)

	var mode cache.SecMode
	switch *modeFlag {
	case "baseline":
		mode = cache.SecOff
	case "timecache":
		mode = cache.SecTimeCache
	case "ftm":
		mode = cache.SecFTM
	default:
		return fmt.Errorf("unknown mode %q", *modeFlag)
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.NewReader(f).ReadAll()
	if err != nil {
		return err
	}

	k := build(mode)
	// Replay into a flat identity-mapped space big enough for the trace's
	// addresses: map every page the trace touches.
	as := kernel.NewAddressSpace(k.Physical())
	mapped := map[uint64]bool{}
	for _, r := range recs {
		switch r.Kind {
		case trace.KindFetch, trace.KindLoad, trace.KindStore, trace.KindFlush:
			page := r.Addr &^ (mem.PageSize - 1)
			if !mapped[page] {
				mapped[page] = true
				if err := as.MapAnon(page, mem.PageSize, true); err != nil {
					return err
				}
			}
		}
	}
	rep := &trace.ReplayProc{Records: recs}
	if _, err := k.Spawn("replay", rep, as, 0); err != nil {
		return err
	}
	cycles := k.Run(1 << 62)
	fmt.Printf("replayed %d records in %d cycles (mode=%s)\n", rep.Replayed(), cycles, mode)
	tb := stats.NewTable("cache", "accesses", "hits", "misses", "first-access")
	for _, c := range k.Hierarchy().Caches() {
		tb.Add(c.Name(), c.Stats.Accesses, c.Stats.Hits, c.Stats.Misses, c.Stats.FirstAccess)
	}
	fmt.Print(tb.String())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace-tool:", err)
	os.Exit(1)
}
