// Command reproduce regenerates every table and figure of the paper's
// evaluation: Fig. 7 (SPEC normalized time), Fig. 8 (delayed-access MPKI
// per level), Fig. 9a/9b (PARSEC), Table II, Fig. 10 (LLC sensitivity),
// the §VI-A security experiments, the §VI-D bookkeeping costs, and the
// defense ablation. Results are printed as aligned tables and ASCII charts
// and written as CSV files into -out.
//
// Usage:
//
//	reproduce                  # everything at default scale (~minutes)
//	reproduce -quick           # reduced instruction budgets (~1 minute)
//	reproduce -only table2     # one experiment: fig7|fig8|fig9|table2|
//	                           #   fig10|security|bookkeeping|ablation|matrix
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"timecache"
	"timecache/internal/harness"
	"timecache/internal/stats"
	"timecache/internal/telemetry"
	"timecache/internal/textplot"
)

func main() {
	var (
		out     = flag.String("out", "results", "directory for CSV output")
		quick   = flag.Bool("quick", false, "reduced instruction budgets")
		only    = flag.String("only", "", "run a single experiment")
		instrs  = flag.Uint64("instrs", 0, "override measured instructions per process")
		warmup  = flag.Uint64("warmup", 0, "override warmup instructions per process")
		jobs    = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulation runs (-j1 = sequential); output is byte-identical at any -j")
		timeout = flag.Duration("timeout", 0, "overall deadline (e.g. 90s); on expiry the sweep stops cleanly and completed experiments keep their CSVs")

		cohCheck = flag.Bool("coherence-check", false, "cross-check the LLC sharer directory against brute-force L1 probes on every coherence event (debug; slow)")

		snapshot  = flag.String("snapshot", "auto", "warm-state snapshot/fork reuse across legs: auto | on | off (results are identical in every mode)")
		snapCheck = flag.Bool("snapshot-check", false, "cross-run every snapshot-forked leg from cold and fail on any counter divergence (debug; slow)")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this path at exit")

		resources = flag.String("resources", "", "write aggregate resource counters (cycles, instructions, cache accesses, switches, s-bit delayed loads) as JSON to this path at exit")

		withTelemetry = flag.Bool("telemetry", false, "attach telemetry to every run: interval metrics + run manifests next to the CSVs in -out")
		metricsOut    = flag.String("metrics-out", "", "interval-metrics CSV base path (suffixed per workload/mode)")
		traceJSON     = flag.String("trace-json", "", "Chrome trace-event JSON base path (suffixed per workload/mode)")
		manifest      = flag.String("manifest", "", "run-manifest JSON base path (suffixed per workload/mode)")
		sampleEvery   = flag.Uint64("sample-every", 0, "interval sampler period in instructions (default 10000)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	opts := timecache.ExperimentOptions{InstrsPerProc: 300_000, WarmupInstrs: 250_000}
	if *quick {
		opts = timecache.ExperimentOptions{InstrsPerProc: 100_000, WarmupInstrs: 150_000}
	}
	if *instrs != 0 {
		opts.InstrsPerProc = *instrs
	}
	if *warmup != 0 {
		opts.WarmupInstrs = *warmup
	}
	opts.Jobs = *jobs
	opts.CoherenceCheck = *cohCheck
	switch *snapshot {
	case "auto":
		opts.Snapshot = harness.SnapshotAuto
	case "on":
		opts.Snapshot = harness.SnapshotOn
	case "off":
		opts.Snapshot = harness.SnapshotOff
	default:
		fatal(fmt.Errorf("-snapshot must be auto, on, or off (got %q)", *snapshot))
	}
	opts.SnapshotCheck = *snapCheck
	var account *harness.ResourceAccount
	if *resources != "" {
		account = &harness.ResourceAccount{}
		opts.Account = account
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Ctx = ctx
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *withTelemetry {
		if *metricsOut == "" {
			*metricsOut = filepath.Join(*out, "metrics.csv")
		}
		if *manifest == "" {
			*manifest = filepath.Join(*out, "manifest.json")
		}
	}
	if *metricsOut != "" || *traceJSON != "" || *manifest != "" {
		opts.Telemetry = &telemetry.Config{
			SampleEvery:  *sampleEvery,
			MetricsCSV:   *metricsOut,
			TraceJSON:    *traceJSON,
			ManifestJSON: *manifest,
		}
	}

	experiments := []struct {
		name string
		run  func() error
	}{
		{"table2", func() error { return specExperiments(opts, *out) }},
		{"fig9", func() error { return parsecExperiments(opts, *out) }},
		{"fig10", func() error { return llcSensitivity(opts, *out) }},
		{"security", func() error { return security(*out) }},
		{"bookkeeping", func() error { return bookkeeping(opts, *out) }},
		{"ablation", func() error { return ablation(opts, *out) }},
		{"matrix", func() error { return matrix(opts, *out) }},
	}
	alias := map[string]string{"fig7": "table2", "fig8": "table2", "fig9a": "fig9", "fig9b": "fig9"}
	if a, ok := alias[*only]; ok {
		*only = a
	}
	ran := false
	var completed []string
	for _, e := range experiments {
		if *only != "" && e.name != *only {
			continue
		}
		ran = true
		if err := e.run(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				fmt.Printf("reproduce: -timeout %s expired during %s; stopping.\n", *timeout, e.name)
				if len(completed) > 0 {
					fmt.Printf("reproduce: partial results: %v completed and written to %s/\n", completed, *out)
				} else {
					fmt.Printf("reproduce: partial results: no experiment completed; nothing written\n")
				}
				os.Exit(1)
			}
			fatal(fmt.Errorf("%s: %w", e.name, err))
		}
		completed = append(completed, e.name)
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *only))
	}
	if account != nil {
		// The snapshot uses the same JSON schema as the job service's
		// result "resources" block, so CLI and HTTP runs compare directly.
		buf, err := json.MarshalIndent(account.Snapshot(), "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*resources, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("reproduce: resource counters written to %s\n", *resources)
	}
}

// specExperiments covers Fig. 7, Fig. 8, and the SPEC half of Table II.
func specExperiments(opts timecache.ExperimentOptions, out string) error {
	rows, err := timecache.ReproduceTableII(opts)
	if err != nil {
		return err
	}
	tab := stats.NewTable("workload", "normalized", "paper", "mpki-base", "paper", "mpki-tc", "paper")
	fig7 := textplot.Chart{Title: "Fig. 7: normalized execution time (single core, 2 processes)", Baseline: 1.0}
	fig8 := textplot.Grouped{Title: "Fig. 8: delayed-access MPKI per cache level", Series: []string{"L1I", "L1D", "LLC"}}
	var norms, papers []float64
	for _, r := range rows {
		tab.Add(r.Workload, r.Normalized, r.PaperNormalized, r.MPKIBaseline, r.PaperMPKIBase, r.MPKITimeCache, r.PaperMPKITC)
		fig7.Add(r.Workload, r.Normalized)
		fig8.Add(r.Workload, r.FirstAccessL1I, r.FirstAccessL1D, r.FirstAccessLLC)
		norms = append(norms, r.Normalized)
		if r.PaperNormalized > 0 {
			papers = append(papers, r.PaperNormalized)
		}
	}
	fmt.Println(fig7.String())
	fmt.Println(fig8.String())
	fmt.Println("Table II (SPEC2006):")
	fmt.Println(tab.String())
	fmt.Printf("geomean normalized: measured %.4f (%.2f%% overhead), paper %.4f (1.13%%)\n\n",
		stats.GeoMean(norms), stats.OverheadPct(stats.GeoMean(norms)), stats.GeoMean(papers))
	return writeCSV(out, "table2_spec.csv", tab)
}

// parsecExperiments covers Fig. 9a/9b and the PARSEC rows of Table II.
func parsecExperiments(opts timecache.ExperimentOptions, out string) error {
	rows, err := timecache.ReproduceParsec(opts)
	if err != nil {
		return err
	}
	tab := stats.NewTable("workload", "normalized", "paper", "mpki-base", "paper", "mpki-tc", "paper")
	fig9a := textplot.Chart{Title: "Fig. 9a: PARSEC normalized execution time (2 threads, 2 cores)", Baseline: 1.0}
	fig9b := textplot.Grouped{Title: "Fig. 9b: PARSEC delayed-access MPKI per cache", Series: []string{"L1I", "L1D", "LLC"}}
	var norms []float64
	for _, r := range rows {
		tab.Add(r.Workload, r.Normalized, r.PaperNormalized, r.MPKIBaseline, r.PaperMPKIBase, r.MPKITimeCache, r.PaperMPKITC)
		fig9a.Add(r.Workload, r.Normalized)
		fig9b.Add(r.Workload, r.FirstAccessL1I, r.FirstAccessL1D, r.FirstAccessLLC)
		norms = append(norms, r.Normalized)
	}
	fmt.Println(fig9a.String())
	fmt.Println(fig9b.String())
	fmt.Println("Table II (PARSEC):")
	fmt.Println(tab.String())
	fmt.Printf("geomean normalized: measured %.4f (%.2f%% overhead), paper ~1.008 (0.8%%)\n\n",
		stats.GeoMean(norms), stats.OverheadPct(stats.GeoMean(norms)))
	return writeCSV(out, "table2_parsec.csv", tab)
}

// llcSensitivity covers Fig. 10.
func llcSensitivity(opts timecache.ExperimentOptions, out string) error {
	rows, err := timecache.ReproduceLLCSensitivity(nil, opts)
	if err != nil {
		return err
	}
	tab := stats.NewTable("llc", "geomean-normalized", "overhead-pct")
	chart := textplot.Chart{Title: "Fig. 10: overhead vs LLC size (scaled sweep; paper: 1.13%/0.4%/0.1% at 2/4/8MB)", Format: "%.3f%%"}
	for _, r := range rows {
		label := fmt.Sprintf("%dKB", r.LLCSizeBytes>>10)
		if r.LLCSizeBytes >= 1<<20 {
			label = fmt.Sprintf("%dMB", r.LLCSizeBytes>>20)
		}
		tab.Add(label, r.GeoMeanNorm, r.OverheadPct)
		chart.Add(label, r.OverheadPct)
	}
	fmt.Println(chart.String())
	fmt.Println(tab.String())
	fmt.Println()
	return writeCSV(out, "fig10_llc_sensitivity.csv", tab)
}

// security covers §VI-A: the microbenchmark and the RSA attack.
func security(out string) error {
	tab := stats.NewTable("experiment", "mode", "result")
	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		mb, err := timecache.RunMicrobenchmark(mode)
		if err != nil {
			return err
		}
		tab.Add("microbenchmark (§VI-A1)", mode.String(),
			fmt.Sprintf("%d/%d lines hit", mb.Hits, mb.Lines))
	}
	for _, mode := range []timecache.Mode{timecache.Baseline, timecache.TimeCache} {
		rsa, err := timecache.RunRSAAttack(mode, 64, 12345)
		if err != nil {
			return err
		}
		tab.Add("RSA flush+reload (§VI-A2)", mode.String(),
			fmt.Sprintf("%.0f%% of key bits, %d hits, victim correct=%v",
				rsa.Accuracy*100, rsa.Hits, rsa.VictimCorrect))
	}
	fmt.Println("Security evaluation (§VI-A):")
	fmt.Println(tab.String())
	fmt.Println()
	return writeCSV(out, "security.csv", tab)
}

// bookkeeping covers §VI-D.
func bookkeeping(opts timecache.ExperimentOptions, out string) error {
	costs := timecache.ComputeSbitCosts(opts)
	fmt.Println("§VI-D s-bit save/restore costs:")
	fmt.Printf("  L1 column: %d 64B transfers; LLC column: %d transfers\n", costs.L1Transfers, costs.LLCTransfers)
	fmt.Printf("  per switch: DMA %d cycles (1.08us at 2GHz), copy %d cycles\n",
		costs.DMACyclesPerSwitch, costs.CopyCyclesPerSwitch)
	rows, err := timecache.ReproduceBookkeepingScaling(nil, opts)
	if err != nil {
		return err
	}
	tab := stats.NewTable("slice-cycles", "bookkeeping-pct", "total-overhead-pct")
	for _, r := range rows {
		tab.Add(fmt.Sprintf("%d", r.SliceCycles), r.BookkeepingPct, r.OverheadPct)
	}
	fmt.Println(tab.String())
	fmt.Println("  (at Linux-scale 1-10ms slices the share converges on the paper's ~0.02%)")
	fmt.Println()
	return writeCSV(out, "bookkeeping.csv", tab)
}

// ablation compares defenses.
func ablation(opts timecache.ExperimentOptions, out string) error {
	rows, err := timecache.ReproduceDefenseAblation("2Xgobmk", opts)
	if err != nil {
		return err
	}
	tab := stats.NewTable("defense", "normalized-time")
	chart := textplot.Chart{Title: "Defense ablation on 2Xgobmk", Baseline: 1.0}
	for _, r := range rows {
		tab.Add(r.Defense, r.Normalized)
		chart.Add(r.Defense, r.Normalized)
	}
	fmt.Println(chart.String())
	fmt.Println(tab.String())
	fmt.Println()
	return writeCSV(out, "ablation.csv", tab)
}

// matrix runs the defense×attack evaluation grid: every registered defense
// against every attack in the corpus (leaked bits per cell) plus its
// normalized slowdown on the default workload pair.
func matrix(opts timecache.ExperimentOptions, out string) error {
	tab, err := harness.RunJob(harness.Job{Experiment: harness.ExpMatrix}, harness.Options{
		InstrsPerProc:  opts.InstrsPerProc,
		WarmupInstrs:   opts.WarmupInstrs,
		CoherenceCheck: opts.CoherenceCheck,
		Jobs:           opts.Jobs,
		Ctx:            opts.Ctx,
		Account:        opts.Account,
		Snapshot:       opts.Snapshot,
		SnapshotCheck:  opts.SnapshotCheck,
	})
	if err != nil {
		return err
	}
	fmt.Println("Defense × attack matrix (leaked bits per attack; slowdown vs none):")
	fmt.Println(tab.String())
	fmt.Println()
	return writeCSV(out, "matrix.csv", tab)
}

func writeCSV(dir, name string, tab *stats.Table) error {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(tab.CSV()), 0o644); err != nil {
		return err
	}
	// Keep a markdown rendering next to each CSV so results paste straight
	// into reports.
	md := filepath.Join(dir, name[:len(name)-len(filepath.Ext(name))]+".md")
	return os.WriteFile(md, []byte(tab.Markdown()), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}
