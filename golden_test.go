package timecache_test

// Golden experiment tests: a small Table-II slice and an LLC-sweep point are
// rendered with exactly the formatting cmd/reproduce uses and diffed
// byte-for-byte against checked-in files under results/golden/. They guard
// the "structural, not semantic" claim: any refactor of the machine assembly
// or the per-access request path that changes simulated timing — or the
// determinism of the parallel runner — fails these tests.
//
// Regenerate with:
//
//	go test -run Golden -update-golden .

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"timecache/internal/defense"
	"timecache/internal/harness"
	"timecache/internal/stats"
	"timecache/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite results/golden files from this run")

// goldenOpts keeps the runs small enough for CI while still crossing the
// warmup boundary and several context switches per process.
func goldenOpts(jobs int) harness.Options {
	return harness.Options{
		InstrsPerProc: 60_000,
		WarmupInstrs:  40_000,
		Jobs:          jobs,
	}
}

// goldenJobs are the worker counts the golden artifacts must agree across.
var goldenJobs = []int{1, 8}

// slicePairs is the Table-II slice: two same-benchmark pairs and one mix.
func slicePairs(t *testing.T) []workload.Pair {
	t.Helper()
	want := map[string]bool{"2Xlbm": true, "2Xgobmk": true, "leslie+gobmk": true}
	var out []workload.Pair
	for _, p := range workload.SpecPairs() {
		if want[p.Label] {
			out = append(out, p)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("golden: found %d of %d slice pairs", len(out), len(want))
	}
	return out
}

// tableIISlice runs the slice through the job dispatch layer — the same
// entry point the HTTP job service uses — so the checked-in artifact also
// pins the service's result bytes.
func tableIISlice(t *testing.T, jobs int) *stats.Table {
	t.Helper()
	pairs := slicePairs(t)
	labels := make([]string, len(pairs))
	for i, p := range pairs {
		labels[i] = p.Label
	}
	tab, err := harness.RunJob(harness.Job{Experiment: harness.ExpTableII, Pairs: labels}, goldenOpts(jobs))
	if err != nil {
		t.Fatalf("golden: table2 slice: %v", err)
	}
	return tab
}

// llcSweepPoint runs one Fig. 10 point (two pairs at 1 MB) through the job
// dispatch layer and renders it in cmd/reproduce's fig10 format.
func llcSweepPoint(t *testing.T, jobs int) *stats.Table {
	t.Helper()
	tab, err := harness.RunJob(harness.Job{
		Experiment: harness.ExpLLCSweep,
		Pairs:      []string{"2Xnamd", "2Xmilc"},
		LLCSizes:   []int{1 << 20},
	}, goldenOpts(jobs))
	if err != nil {
		t.Fatalf("golden: llc sweep: %v", err)
	}
	return tab
}

// checkGolden diffs got against results/golden/<name>, rewriting the file
// under -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("results", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden: %v (regenerate with -update-golden)", err)
	}
	if string(want) != string(got) {
		t.Errorf("golden: %s diverged from checked-in artifact\n--- want ---\n%s--- got ---\n%s", name, want, got)
	}
}

func TestGoldenTableIISlice(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var first *stats.Table
	for _, jobs := range goldenJobs {
		tab := tableIISlice(t, jobs)
		if first == nil {
			first = tab
			checkGolden(t, "table2_slice.csv", []byte(tab.CSV()))
			checkGolden(t, "table2_slice.md", []byte(tab.Markdown()))
			continue
		}
		if tab.CSV() != first.CSV() {
			t.Errorf("golden: table2 slice differs between -j%d and -j%d", goldenJobs[0], jobs)
		}
	}
}

// matrixAttackBits keeps the golden matrix's attack cells small: 12 secret
// bits per channel is enough for leaks-vs-dead contrast while staying CI
// sized.
const matrixAttackBits = 12

// matrixTable runs the full default defense×attack matrix (every registry
// defense against every corpus attack, one perf pair) through the job
// dispatch layer.
func matrixTable(t *testing.T, jobs int) *stats.Table {
	t.Helper()
	tab, err := harness.RunJob(harness.Job{
		Experiment: harness.ExpMatrix,
		AttackBits: matrixAttackBits,
	}, goldenOpts(jobs))
	if err != nil {
		t.Fatalf("golden: matrix: %v", err)
	}
	return tab
}

// TestGoldenMatrix pins the defense×attack matrix bytes: all seven registry
// defenses against the full attack corpus, identical at -j1 and -j8 and
// against the checked-in artifact.
func TestGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var first *stats.Table
	for _, jobs := range goldenJobs {
		tab := matrixTable(t, jobs)
		if first == nil {
			first = tab
			checkGolden(t, "matrix.csv", []byte(tab.CSV()))
			checkGolden(t, "matrix.md", []byte(tab.Markdown()))
			continue
		}
		if tab.CSV() != first.CSV() {
			t.Errorf("golden: matrix differs between -j%d and -j%d", goldenJobs[0], jobs)
		}
	}
}

// TestDefenseEquivalence pins the tentpole refactor's central claim: every
// harness leg now selects its mechanism through the defense registry
// (machine.Config.Defense) instead of the legacy structural flags, and the
// result bytes are still the seed goldens. It also pins the ablation's
// migration onto the registry: its rows are exactly the registry kinds in
// canonical order, under the historical display names.
func TestDefenseEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	want, err := os.ReadFile(filepath.Join("results", "golden", "table2_slice.csv"))
	if err != nil {
		t.Fatalf("golden: %v (regenerate with -update-golden)", err)
	}
	if got := tableIISlice(t, 1).CSV(); got != string(want) {
		t.Errorf("golden: registry-routed table2 slice diverged from seed artifact\n--- want ---\n%s--- got ---\n%s", want, got)
	}

	abl, err := harness.RunJob(harness.Job{Experiment: harness.ExpAblation}, goldenOpts(2))
	if err != nil {
		t.Fatalf("golden: ablation: %v", err)
	}
	display := map[string]string{defense.None: "baseline", defense.DAWGLite: "partitioned"}
	var wantRows []string
	for _, kind := range defense.Kinds() {
		name := kind
		if d, ok := display[kind]; ok {
			name = d
		}
		wantRows = append(wantRows, name)
	}
	lines := strings.Split(strings.TrimSpace(abl.CSV()), "\n")
	if len(lines) != len(wantRows)+1 {
		t.Fatalf("ablation has %d rows, want header + %d defenses:\n%s", len(lines)-1, len(wantRows), abl.CSV())
	}
	for i, name := range wantRows {
		if got := strings.SplitN(lines[i+1], ",", 2)[0]; got != name {
			t.Errorf("ablation row %d = %q, want registry kind %q", i, got, name)
		}
	}
}

func TestGoldenLLCSweepPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var first *stats.Table
	for _, jobs := range goldenJobs {
		tab := llcSweepPoint(t, jobs)
		if first == nil {
			first = tab
			checkGolden(t, "llc_sweep.csv", []byte(tab.CSV()))
			checkGolden(t, "llc_sweep.md", []byte(tab.Markdown()))
			continue
		}
		if tab.CSV() != first.CSV() {
			t.Errorf("golden: llc sweep differs between -j%d and -j%d", goldenJobs[0], jobs)
		}
	}
}

// TestGoldenSnapshotForkModes pins the tentpole's correctness claim end to
// end: the Table-II slice, the LLC-sweep point, and a defense-ablation job
// render byte-identical CSVs with snapshot forking forced on (every measured
// leg runs on a fork of its warm snapshot) and forced off (every leg runs
// cold) — and the forced-on Table-II bytes match the checked-in golden
// artifact, so the fork path cannot drift from the historical results.
func TestGoldenSnapshotForkModes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	jobsRuns := []harness.Job{
		{Experiment: harness.ExpTableII, Pairs: []string{"2Xlbm", "2Xgobmk", "leslie+gobmk"}},
		{Experiment: harness.ExpLLCSweep, Pairs: []string{"2Xnamd", "2Xmilc"}, LLCSizes: []int{1 << 20}},
		{Experiment: harness.ExpAblation, Pairs: []string{"2Xgobmk"}},
		// A matrix slice with a runtime defense: the perf legs exercise the
		// snapshot path's Defense.CopyFrom deep-copy.
		{Experiment: harness.ExpMatrix, Defenses: []string{defense.None, defense.Clepsydra},
			Attacks: []string{"smt"}, AttackBits: 8},
	}
	golden := map[string]string{"table2": "table2_slice.csv", "llc-sweep": "llc_sweep.csv"}
	for _, job := range jobsRuns {
		off := goldenOpts(1)
		off.Snapshot = harness.SnapshotOff
		wantTab, err := harness.RunJob(job, off)
		if err != nil {
			t.Fatalf("golden: %s with snapshot off: %v", job.Experiment, err)
		}
		on := goldenOpts(1)
		on.Snapshot = harness.SnapshotOn
		gotTab, err := harness.RunJob(job, on)
		if err != nil {
			t.Fatalf("golden: %s with snapshot on: %v", job.Experiment, err)
		}
		if gotTab.CSV() != wantTab.CSV() {
			t.Errorf("golden: %s differs between snapshot-fork on and off\n--- off ---\n%s--- on ---\n%s",
				job.Experiment, wantTab.CSV(), gotTab.CSV())
		}
		if name, ok := golden[job.Experiment]; ok && !*updateGolden {
			want, err := os.ReadFile(filepath.Join("results", "golden", name))
			if err != nil {
				t.Fatalf("golden: %v (regenerate with -update-golden)", err)
			}
			if gotTab.CSV() != string(want) {
				t.Errorf("golden: %s under snapshot-fork diverged from checked-in artifact\n--- want ---\n%s--- got ---\n%s",
					job.Experiment, want, gotTab.CSV())
			}
		}
	}
}

// TestGoldenSnapshotCheck exercises the -snapshot-check debug mode the way
// CI runs it: every forked leg is re-run cold and any counter divergence is
// an error, so a pass certifies fork-equals-cold at measurement granularity.
func TestGoldenSnapshotCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := goldenOpts(2)
	opts.SnapshotCheck = true
	if _, err := harness.RunJob(harness.Job{
		Experiment: harness.ExpTableII,
		Pairs:      []string{"2Xlbm"},
	}, opts); err != nil {
		t.Fatalf("golden: snapshot-check run failed: %v", err)
	}
}
