package timecache_test

// Golden experiment tests: a small Table-II slice and an LLC-sweep point are
// rendered with exactly the formatting cmd/reproduce uses and diffed
// byte-for-byte against checked-in files under results/golden/. They guard
// the "structural, not semantic" claim: any refactor of the machine assembly
// or the per-access request path that changes simulated timing — or the
// determinism of the parallel runner — fails these tests.
//
// Regenerate with:
//
//	go test -run Golden -update-golden .

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"timecache/internal/harness"
	"timecache/internal/runner"
	"timecache/internal/stats"
	"timecache/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite results/golden files from this run")

// goldenOpts keeps the runs small enough for CI while still crossing the
// warmup boundary and several context switches per process.
func goldenOpts(jobs int) harness.Options {
	return harness.Options{
		InstrsPerProc: 60_000,
		WarmupInstrs:  40_000,
		Jobs:          jobs,
	}
}

// goldenJobs are the worker counts the golden artifacts must agree across.
var goldenJobs = []int{1, 8}

// slicePairs is the Table-II slice: two same-benchmark pairs and one mix.
func slicePairs(t *testing.T) []workload.Pair {
	t.Helper()
	want := map[string]bool{"2Xlbm": true, "2Xgobmk": true, "leslie+gobmk": true}
	var out []workload.Pair
	for _, p := range workload.SpecPairs() {
		if want[p.Label] {
			out = append(out, p)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("golden: found %d of %d slice pairs", len(out), len(want))
	}
	return out
}

// tableIISlice runs the slice through the parallel runner and renders it in
// cmd/reproduce's table2 format.
func tableIISlice(t *testing.T, jobs int) *stats.Table {
	t.Helper()
	pairs := slicePairs(t)
	opts := goldenOpts(jobs)
	rows, err := runner.Map(len(pairs), runner.Options{Workers: jobs}, func(i int) (harness.PairResult, error) {
		return harness.RunSpecPair(pairs[i], opts)
	})
	if err != nil {
		t.Fatalf("golden: table2 slice: %v", err)
	}
	tab := stats.NewTable("workload", "normalized", "mpki-base", "mpki-tc", "fa-l1i", "fa-l1d", "fa-llc")
	for _, r := range rows {
		tab.Add(r.Label, r.Normalized, r.MPKIBase, r.MPKITC,
			r.FirstAccess.L1I, r.FirstAccess.L1D, r.FirstAccess.LLC)
	}
	return tab
}

// llcSweepPoint runs one Fig. 10 point (two pairs at 1 MB) and renders it in
// cmd/reproduce's fig10 format.
func llcSweepPoint(t *testing.T, jobs int) *stats.Table {
	t.Helper()
	var pairs []workload.Pair
	for _, p := range workload.SpecPairs() {
		if p.Label == "2Xnamd" || p.Label == "2Xmilc" {
			pairs = append(pairs, p)
		}
	}
	if len(pairs) != 2 {
		t.Fatalf("golden: found %d of 2 sweep pairs", len(pairs))
	}
	pts, err := harness.RunLLCSensitivity([]int{1 << 20}, pairs, goldenOpts(jobs))
	if err != nil {
		t.Fatalf("golden: llc sweep: %v", err)
	}
	tab := stats.NewTable("llc", "geomean-normalized", "overhead-pct")
	for _, p := range pts {
		tab.Add(fmt.Sprintf("%dKB", p.LLCSize>>10), p.GeoMeanNorm, p.OverheadPct)
	}
	return tab
}

// checkGolden diffs got against results/golden/<name>, rewriting the file
// under -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("results", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden: %v (regenerate with -update-golden)", err)
	}
	if string(want) != string(got) {
		t.Errorf("golden: %s diverged from checked-in artifact\n--- want ---\n%s--- got ---\n%s", name, want, got)
	}
}

func TestGoldenTableIISlice(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var first *stats.Table
	for _, jobs := range goldenJobs {
		tab := tableIISlice(t, jobs)
		if first == nil {
			first = tab
			checkGolden(t, "table2_slice.csv", []byte(tab.CSV()))
			checkGolden(t, "table2_slice.md", []byte(tab.Markdown()))
			continue
		}
		if tab.CSV() != first.CSV() {
			t.Errorf("golden: table2 slice differs between -j%d and -j%d", goldenJobs[0], jobs)
		}
	}
}

func TestGoldenLLCSweepPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var first *stats.Table
	for _, jobs := range goldenJobs {
		tab := llcSweepPoint(t, jobs)
		if first == nil {
			first = tab
			checkGolden(t, "llc_sweep.csv", []byte(tab.CSV()))
			checkGolden(t, "llc_sweep.md", []byte(tab.Markdown()))
			continue
		}
		if tab.CSV() != first.CSV() {
			t.Errorf("golden: llc sweep differs between -j%d and -j%d", goldenJobs[0], jobs)
		}
	}
}
