package timecache

import (
	"strings"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	s, err := New(Config{Mode: TimeCache})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st.Caches) != 3 { // l1i0, l1d0, llc
		t.Fatalf("expected 3 caches, got %d", len(st.Caches))
	}
}

func TestLoadAsmAndRun(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.LoadAsm(`
		movi r1, 6
		movi r2, 7
		mul  r1, r1, r2
		sys  4        ; print r1
		sys  0        ; exit r1
	`, LoadOptions{Name: "six-by-seven"})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1_000_000)
	if !p.Exited() {
		t.Fatal("program did not exit")
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	if p.ExitCode() != 42 {
		t.Fatalf("exit code %d, want 42", p.ExitCode())
	}
	if out := p.Output(); len(out) != 1 || out[0] != 42 {
		t.Fatalf("output %v, want [42]", out)
	}
	if p.Stats().Instructions == 0 {
		t.Fatal("no instructions accounted")
	}
}

func TestAsmErrorSurface(t *testing.T) {
	s, _ := New(Config{})
	if _, err := s.LoadAsm("bogus r1", LoadOptions{}); err == nil {
		t.Fatal("assembler errors must surface")
	}
}

func TestSharedTextFirstAccess(t *testing.T) {
	// Two copies of one looping binary sharing text: TimeCache must record
	// first accesses; the baseline never does.
	src := `
		movi r1, 0
		movi r2, 50000
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`
	for _, mode := range []Mode{Baseline, TimeCache} {
		s, err := New(Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := s.LoadAsm(src, LoadOptions{ShareKey: "loop"}); err != nil {
				t.Fatal(err)
			}
		}
		s.Run(100_000_000)
		if !s.AllExited() {
			t.Fatal("did not finish")
		}
		var fa uint64
		for _, c := range s.Stats().Caches {
			fa += c.FirstAccess
		}
		if mode == Baseline && fa != 0 {
			t.Fatalf("baseline recorded %d first accesses", fa)
		}
		if mode == TimeCache && fa == 0 {
			t.Fatal("TimeCache recorded no first accesses for shared text")
		}
		if mode == TimeCache && s.Stats().BookkeepingCycles == 0 {
			t.Fatal("TimeCache bookkeeping not charged")
		}
	}
}

func TestSpawnSpecWorkload(t *testing.T) {
	s, err := New(Config{Mode: TimeCache})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SpawnSpec("nonexistent", 0, 1000, 1); err == nil {
		t.Fatal("unknown workload must error")
	}
	p, err := s.SpawnSpec("namd", 0, 20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1 << 62)
	if !p.Exited() {
		t.Fatal("workload did not finish")
	}
	if got := p.Stats().Instructions; got != 20_000 {
		t.Fatalf("instructions = %d, want 20000", got)
	}
}

func TestSpawnParsecNeedsTwoCores(t *testing.T) {
	s, _ := New(Config{Cores: 1})
	if _, err := s.SpawnParsecPair("x264", 1000); err == nil {
		t.Fatal("1-core PARSEC pair must error")
	}
	s2, _ := New(Config{Cores: 2})
	ps, err := s2.SpawnParsecPair("x264", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("want 2 threads, got %d", len(ps))
	}
	s2.Run(1 << 62)
	if !s2.AllExited() {
		t.Fatal("threads did not finish")
	}
}

func TestWorkloadLists(t *testing.T) {
	if len(SpecWorkloads()) < 15 {
		t.Fatal("SPEC list too short")
	}
	if len(ParsecWorkloads()) != 6 {
		t.Fatal("PARSEC list should have 6 entries")
	}
	if len(SpecPairLabels()) != 24 {
		t.Fatalf("Table II has 24 workloads, got %d", len(SpecPairLabels()))
	}
}

func TestModeString(t *testing.T) {
	if Baseline.String() != "baseline" || TimeCache.String() != "timecache" || FTM.String() != "ftm" {
		t.Fatal("mode names wrong")
	}
	if !strings.HasPrefix(Mode(9).String(), "Mode(") {
		t.Fatal("unknown mode formatting")
	}
}

func TestPublicMicrobenchmark(t *testing.T) {
	base, err := RunMicrobenchmark(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	def, err := RunMicrobenchmark(TimeCache)
	if err != nil {
		t.Fatal(err)
	}
	if base.Hits == 0 || def.Hits != 0 {
		t.Fatalf("baseline hits=%d (want >0), timecache hits=%d (want 0)", base.Hits, def.Hits)
	}
}

func TestPublicRSAAttack(t *testing.T) {
	base, err := RunRSAAttack(Baseline, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	if base.Accuracy < 0.9 || !base.VictimCorrect {
		t.Fatalf("baseline attack should succeed: %+v", base)
	}
	def, err := RunRSAAttack(TimeCache, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	if def.Hits != 0 || !def.VictimCorrect {
		t.Fatalf("defended attack should observe nothing: %+v", def)
	}
	if len(def.KeyBits) != 32 || len(def.RecoveredBits) != 32 {
		t.Fatal("bit strings malformed")
	}
}

func TestExperimentSinglePair(t *testing.T) {
	opts := ExperimentOptions{InstrsPerProc: 40_000, WarmupInstrs: 80_000}
	row, err := ReproduceSpecPair("2Xnamd", opts)
	if err != nil {
		t.Fatal(err)
	}
	if row.Normalized <= 0 {
		t.Fatal("normalized time missing")
	}
	if row.PaperNormalized == 0 {
		t.Fatal("paper reference missing for 2Xnamd")
	}
	// Ad-hoc pair of a profile name not in the Table II list.
	row2, err := ReproduceSpecPair("zeusmp", opts)
	if err != nil {
		t.Fatal(err)
	}
	if row2.Workload != "2Xzeusmp" {
		t.Fatalf("ad-hoc pair label %q", row2.Workload)
	}
	if _, err := ReproduceSpecPair("nonsense", opts); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestComputeSbitCosts(t *testing.T) {
	c := ComputeSbitCosts(ExperimentOptions{})
	if c.L1Transfers != 1 || c.LLCTransfers != 64 {
		t.Fatalf("transfers: %+v", c)
	}
	if c.DMACyclesPerSwitch != 2160 {
		t.Fatalf("DMA cycles %d, want 2160 (1.08us at 2GHz)", c.DMACyclesPerSwitch)
	}
}

func TestDedupAPI(t *testing.T) {
	s, err := New(Config{Mode: TimeCache})
	if err != nil {
		t.Fatal(err)
	}
	// Two private copies of the same program (no share key): dedup should
	// merge their identical text pages.
	src := "movi r1, 1\nhalt"
	if _, err := s.LoadAsm(src, LoadOptions{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadAsm(src, LoadOptions{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if merged := s.DedupScan(); merged == 0 {
		t.Fatal("identical private text pages should merge")
	}
	if s.Stats().DedupMergedPages == 0 {
		t.Fatal("dedup stat not recorded")
	}
}
