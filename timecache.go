// Package timecache is a from-scratch Go reproduction of "TimeCache: Using
// Time to Eliminate Cache Side Channels when Sharing Software" (Ojha &
// Dwarkadas, ISCA 2021).
//
// It bundles a cycle-level multi-core cache-hierarchy simulator, a small
// operating-system substrate (processes, virtual memory, a round-robin
// scheduler with TimeCache's context-switch s-bit bookkeeping, KSM-style
// page deduplication), a μRISC ISA with assembler and interpreter, the
// paper's attacks (flush+reload, evict+reload, flush+flush, prime+probe,
// LRU, coherence invalidate+transfer, evict+time), an RSA square-and-
// multiply victim, and calibrated SPEC2006/PARSEC workload models.
//
// The top-level API exposes three layers:
//
//   - System construction and program execution (New, (*System).LoadAsm,
//     (*System).SpawnSpec, (*System).Run) for building custom experiments.
//   - Attack scenarios (RunRSAAttack, RunMicrobenchmark, ...) matching the
//     paper's security evaluation.
//   - Experiment reproduction (ReproduceTableII, ReproduceParsec,
//     ReproduceLLCSensitivity, ...) regenerating every table and figure.
package timecache

import (
	"context"
	"fmt"

	"timecache/internal/asm"
	"timecache/internal/cache"
	"timecache/internal/kernel"
	"timecache/internal/machine"
	"timecache/internal/telemetry"
	"timecache/internal/vm"
	"timecache/internal/workload"
)

// Mode selects the defense configuration of a System.
type Mode int

// Defense modes.
const (
	// Baseline is an undefended conventional cache hierarchy.
	Baseline Mode = iota
	// TimeCache enables the paper's defense: per-context s-bits with
	// first-access delays and context-switch Tc/Ts reconciliation.
	TimeCache
	// FTM enables the First Time Miss baseline defense (LLC presence bits
	// per core, no context-switch bookkeeping).
	FTM
)

func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case TimeCache:
		return "timecache"
	case FTM:
		return "ftm"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

func (m Mode) secMode() cache.SecMode {
	switch m {
	case TimeCache:
		return cache.SecTimeCache
	case FTM:
		return cache.SecFTM
	default:
		return cache.SecOff
	}
}

// Config describes a simulated machine. The zero value is completed with
// the paper's evaluation parameters (one 2 GHz core, 32 KB L1I/L1D, 2 MB
// LLC, 64 B lines, 32-bit timestamps).
type Config struct {
	// Mode selects the defense (Baseline, TimeCache, FTM).
	Mode Mode
	// Cores is the number of cores (default 1).
	Cores int
	// L1Size and LLCSize are cache sizes in bytes (defaults 32 KB / 2 MB).
	L1Size, LLCSize int
	// TimestampBits is the Tc width (default 32).
	TimestampBits uint
	// GateLevel routes context-switch timestamp comparisons through the
	// gate-level transposed-SRAM comparator model.
	GateLevel bool
	// MaxSharers, when positive, uses the limited-pointer s-bit tracker
	// (the paper's §VI-C area optimization) instead of the full per-context
	// map: at most this many sharers are tracked per line; overflow evicts
	// a sharer, costing it an extra first-access miss but never weakening
	// the defense.
	MaxSharers int
	// ConstantTimeFlush makes clflush constant-time (the §VII-C
	// mitigation).
	ConstantTimeFlush bool
	// Partitioned enables the DAWG-lite way-partitioning baseline.
	Partitioned bool
	// RandomizedIndex enables CEASER-lite LLC index randomization with the
	// given nonzero key.
	RandomizedIndex uint64
	// CoherenceCheck cross-checks the LLC sharer directory against a
	// brute-force probe of every L1 on every coherence event, panicking on
	// divergence (debug mode; costs O(cores) per access).
	CoherenceCheck bool
	// SliceCycles overrides the scheduler time slice (default 200k cycles).
	SliceCycles uint64
	// PhysFrames sizes physical memory (default 32768 frames = 128 MB).
	PhysFrames int
}

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 1
	}
	if c.PhysFrames == 0 {
		c.PhysFrames = machine.DefaultPhysFrames
	}
	return c
}

// machineConfig maps the public Config onto the machine assembly config.
func (c Config) machineConfig() machine.Config {
	return machine.Config{
		Mode:              c.Mode.secMode(),
		Cores:             c.Cores,
		L1Size:            c.L1Size,
		LLCSize:           c.LLCSize,
		TimestampBits:     c.TimestampBits,
		GateLevel:         c.GateLevel,
		MaxSharers:        c.MaxSharers,
		ConstantTimeFlush: c.ConstantTimeFlush,
		Partitioned:       c.Partitioned,
		RandomizedIndex:   c.RandomizedIndex,
		CoherenceCheck:    c.CoherenceCheck,
		SliceCycles:       c.SliceCycles,
		PhysFrames:        c.PhysFrames,
	}
}

// System is a simulated machine: cores, caches, physical memory, and the
// kernel that schedules processes on it.
type System struct {
	cfg  Config
	m    *machine.Machine
	k    *kernel.Kernel
	pool *machine.Pool
}

// New builds a System from cfg. Assembly happens in internal/machine; this
// only translates the public Config.
func New(cfg Config) (*System, error) {
	return NewFromPool(nil, cfg)
}

// NewFromPool builds a System from cfg, checking a machine out of pool when
// one of the identical shape was released earlier (pool may be nil to always
// build fresh). A reused machine is Reset first and runs exactly like a new
// one; call Release when done with the System so the machine goes back for
// the next run.
func NewFromPool(pool *machine.Pool, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	m := pool.Get(cfg.machineConfig())
	return &System{cfg: cfg, m: m, k: m.Kernel(), pool: pool}, nil
}

// Release returns the System's machine to the pool it was drawn from (a
// no-op for pool-less Systems). The System must not be used afterwards.
func (s *System) Release() { s.pool.Put(s.m) }

// Process is a handle on a spawned process.
type Process struct {
	p   *kernel.Process
	cpu *vm.CPU
}

// PID returns the process ID.
func (p *Process) PID() int { return p.p.PID }

// Exited reports whether the process has terminated.
func (p *Process) Exited() bool { return p.p.State == kernel.Exited }

// ExitCode returns the SysExit argument (meaningful once Exited).
func (p *Process) ExitCode() uint64 { return p.p.ExitCode }

// Err returns the fault that killed the process, if any.
func (p *Process) Err() error {
	if p.p.Err != nil {
		return p.p.Err
	}
	if p.cpu != nil && p.cpu.Fault != nil {
		return p.cpu.Fault
	}
	return nil
}

// Output returns the values the program emitted with the print syscall
// (μRISC programs only).
func (p *Process) Output() []uint64 {
	if p.cpu == nil {
		return nil
	}
	return p.cpu.Output
}

// Stats returns the process's accounting counters.
func (p *Process) Stats() ProcessStats {
	return ProcessStats{
		Instructions:    p.p.Stats.Instructions,
		CPUCycles:       p.p.Stats.CPUCycles,
		FinishedAtCycle: p.p.Stats.FinishedAt,
		TimesScheduled:  p.p.Stats.Switches,
	}
}

// ProcessStats summarizes one process's execution.
type ProcessStats struct {
	Instructions    uint64
	CPUCycles       uint64
	FinishedAtCycle uint64
	TimesScheduled  uint64
}

// LoadOptions controls LoadAsm.
type LoadOptions struct {
	// Core pins the process (default 0).
	Core int
	// ShareKey makes the program's text and .shared segment shared
	// physical memory with every other program loaded under the same key.
	ShareKey string
	// Name labels the process in stats output.
	Name string
}

// LoadAsm assembles μRISC source and spawns it as a process.
func (s *System) LoadAsm(src string, opts LoadOptions) (*Process, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	p, cpu, err := s.k.Load(prog, kernel.LoadOptions{
		Core: opts.Core, ShareKey: opts.ShareKey, Name: opts.Name,
	})
	if err != nil {
		return nil, err
	}
	return &Process{p: p, cpu: cpu}, nil
}

// SpawnSpec starts an instance of a named SPEC2006 workload model (see
// SpecWorkloads) pinned to a core.
func (s *System) SpawnSpec(name string, core int, instrs uint64, seed uint64) (*Process, error) {
	prof, err := workload.Spec(name)
	if err != nil {
		return nil, err
	}
	p, _, err := workload.Spawn(s.k, prof, workload.SpawnOptions{
		Core: core, Instrs: instrs, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &Process{p: p}, nil
}

// SpawnParsecPair starts a 2-thread instance of a named PARSEC workload
// model with one thread per core (the Fig. 9 configuration; the System must
// have at least 2 cores).
func (s *System) SpawnParsecPair(name string, instrs uint64) ([]*Process, error) {
	if s.cfg.Cores < 2 {
		return nil, fmt.Errorf("timecache: PARSEC pair needs 2 cores, have %d", s.cfg.Cores)
	}
	prof, err := workload.Parsec(name)
	if err != nil {
		return nil, err
	}
	as, err := workload.BuildSharedAS(s.k, prof)
	if err != nil {
		return nil, err
	}
	var out []*Process
	for t := 0; t < 2; t++ {
		proc := workload.NewProc(prof, instrs, uint64(7000+t*13))
		p, err := s.k.Spawn(fmt.Sprintf("%s.t%d", name, t), proc, as.Share(), t)
		if err != nil {
			return nil, err
		}
		out = append(out, &Process{p: p})
	}
	return out, nil
}

// AttachTelemetry installs a telemetry collector (interval sampler, latency
// histograms, Chrome-trace exporter, run manifest) on the machine. Attach
// before Run; call Finish on the returned collector after the run to write
// the configured outputs. See internal/telemetry for the Config fields.
func (s *System) AttachTelemetry(cfg telemetry.Config) *telemetry.Collector {
	return telemetry.New(cfg).Attach(s.k)
}

// Run advances the machine until every process exits or maxCycles elapses
// on some core, returning the final cycle count.
func (s *System) Run(maxCycles uint64) uint64 { return s.k.Run(maxCycles) }

// RunContext is Run bounded by a context: when ctx is cancelled the machine
// stops within a few thousand simulated instructions and RunContext returns
// the cycle count reached. Use ctx.Err() and AllExited to distinguish
// completion from cancellation; a cancelled System must not be run again.
func (s *System) RunContext(ctx context.Context, maxCycles uint64) uint64 {
	return s.k.RunCtx(ctx, maxCycles)
}

// AllExited reports whether every spawned process has terminated.
func (s *System) AllExited() bool { return s.k.AllExited() }

// DedupScan performs one KSM-style same-page-merging pass over all
// processes' private pages and returns the number of pages merged.
func (s *System) DedupScan() int { return s.k.DedupScan() }

// CacheStats summarizes one cache's counters.
type CacheStats struct {
	Name        string
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	FirstAccess uint64
	Evictions   uint64
	Writebacks  uint64
	Invalidates uint64
}

// Stats summarizes the machine after (or during) a run.
type Stats struct {
	Caches            []CacheStats
	ContextSwitches   uint64
	BookkeepingCycles uint64
	Syscalls          uint64
	COWBreaks         uint64
	DedupMergedPages  uint64
	MaxCycle          uint64
}

// Stats snapshots the machine counters.
func (s *System) Stats() Stats {
	out := Stats{
		ContextSwitches:   s.k.Stats.ContextSwitches,
		BookkeepingCycles: s.k.Stats.BookkeepingCycles,
		Syscalls:          s.k.Stats.Syscalls,
		COWBreaks:         s.k.Stats.COWBreaks,
		DedupMergedPages:  s.k.Stats.DedupMerged,
	}
	for _, c := range s.k.Hierarchy().Caches() {
		out.Caches = append(out.Caches, CacheStats{
			Name:        c.Name(),
			Accesses:    c.Stats.Accesses,
			Hits:        c.Stats.Hits,
			Misses:      c.Stats.Misses,
			FirstAccess: c.Stats.FirstAccess,
			Evictions:   c.Stats.Evictions,
			Writebacks:  c.Stats.Writebacks,
			Invalidates: c.Stats.Invalidates,
		})
	}
	for c := 0; c < s.cfg.Cores; c++ {
		if t := s.k.CoreClock(c); t > out.MaxCycle {
			out.MaxCycle = t
		}
	}
	return out
}

// SpecWorkloads lists the available SPEC2006 workload model names.
func SpecWorkloads() []string { return workload.SpecNames() }

// ParsecWorkloads lists the available PARSEC workload model names.
func ParsecWorkloads() []string { return workload.ParsecNames() }
